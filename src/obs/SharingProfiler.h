//===- obs/SharingProfiler.h - Per-line coherence attribution -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes coherence events to cache lines and allocation sites. The
/// coherence controller feeds every invalidation, downgrade, reconcile,
/// WARD grant, and demand miss into a bounded per-line table; at report
/// time each hot line is classified (private, true-sharing, false-sharing,
/// migratory, WARD-elided) from its per-core write footprints and sharer
/// history, and rolled up by the allocation site recorded in the trace's
/// MemoryMap — so a report can say "lines from `dedup: hash table` caused
/// 41% of invalidations under MESI and none under WARDen".
///
/// The table is bounded: the hottest Capacity lines are tracked exactly;
/// once full, new lines are admitted by deterministic decayed sampling
/// (every 2^AdmitShift-th candidate evicts the current minimum-traffic
/// entry) and the rest are counted as dropped. Everything here is passive
/// recording, preserving the subsystem's zero-perturbation contract:
/// detached costs one null check per hook, attached runs are
/// cycle-identical (asserted by tests/ProfilerTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_SHARINGPROFILER_H
#define WARDEN_OBS_SHARINGPROFILER_H

#include "src/support/CoreMask.h"
#include "src/support/Types.h"
#include "src/mem/SectorMask.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warden {

class JsonWriter;
class MemoryMap;
struct Observability;

/// Sharing classification of one profiled line.
enum class SharingClass : std::uint8_t {
  Private,      ///< Touched by at most one core.
  TrueSharing,  ///< Multiple writers with overlapping byte footprints.
  FalseSharing, ///< Multiple writers, disjoint byte footprints.
  Migratory,    ///< Write ownership moved between cores (read-modify-write
                ///< handoffs: invalidations but overlapping footprints and
                ///< no downgrade pressure).
  WardElided,   ///< Served under WARD with no invalidation/downgrade paid.
  ReadShared,   ///< Multiple readers, at most one writer.
};

const char *sharingClassName(SharingClass C);

/// One profiled line in a report (value type).
struct LineProfile {
  Addr Block = 0;
  std::uint32_t Site = static_cast<std::uint32_t>(-1);
  std::string SiteName;
  SharingClass Class = SharingClass::Private;
  std::uint64_t Invalidations = 0;
  std::uint64_t Downgrades = 0;
  std::uint64_t Reconciles = 0;
  std::uint64_t WardGrants = 0;
  std::uint64_t RemoteHops = 0;
  std::uint64_t DemandMisses = 0;
  std::uint64_t DemandMissCycles = 0;
  /// Demand misses re-fetching a block the same core lost to a capacity
  /// eviction — the replacement policy's direct contribution to this
  /// line's miss count (fed by the controller's premature-miss tracker).
  std::uint64_t PrematureMisses = 0;
  std::uint64_t WriterHandoffs = 0;
  std::uint64_t PingPongs = 0; ///< Alternating-writer (A,B,A) transitions.
  unsigned Readers = 0;
  unsigned Writers = 0;

  std::uint64_t traffic() const {
    return Invalidations + Downgrades + Reconciles + WardGrants +
           DemandMisses;
  }
};

/// Per-allocation-site rollup across every tracked line.
struct SiteProfile {
  std::uint32_t Site = static_cast<std::uint32_t>(-1);
  std::string SiteName;
  std::uint64_t Lines = 0;
  std::uint64_t Invalidations = 0;
  std::uint64_t Downgrades = 0;
  std::uint64_t Reconciles = 0;
  std::uint64_t WardGrants = 0;
  std::uint64_t DemandMisses = 0;
  std::uint64_t DemandMissCycles = 0;
  std::uint64_t PrematureMisses = 0;
};

/// Snapshot of one run's profile, carried into RunResult. Cheap value
/// semantics so median selection can copy it.
struct ProfileReport {
  bool Enabled = false;
  /// Top lines by traffic, descending (ties: lower address first).
  std::vector<LineProfile> Lines;
  /// Every site with nonzero traffic, by descending inv+down+reconcile.
  std::vector<SiteProfile> Sites;
  std::uint64_t TrackedLines = 0;  ///< Lines resident in the table at end.
  std::uint64_t DroppedEvents = 0; ///< Events that fell on untracked lines.
  std::uint64_t TotalInvalidations = 0;
  std::uint64_t TotalDowngrades = 0;
  std::uint64_t TotalPrematureMisses = 0;

  /// Emits the report as one "warden-prof-v1" JSON object onto \p W.
  void writeJson(JsonWriter &W) const;
};

/// The bounded per-line event table. One instance profiles one simulated
/// run; WardenSystem::simulate calls beginRun() before replay so a
/// compare() reuses the same instance for both protocols cleanly.
class SharingProfiler {
public:
  /// \p Capacity bounds the table; \p AdmitShift sets the decayed-sampling
  /// rate once full (admit every 2^AdmitShift-th new line).
  explicit SharingProfiler(std::size_t Capacity = 4096,
                           unsigned AdmitShift = 4)
      : Capacity(Capacity ? Capacity : 1), AdmitShift(AdmitShift) {}

  /// Resets all state and binds the run's site map and (optional) trace
  /// sink for live contention counters. Called by the simulator before
  /// replay; also resets the Perfetto counter-track budget.
  void beginRun(const MemoryMap *Map, Observability *RunObs);

  // --- Controller hooks (hot path; all O(1) expected) ----------------------

  void onRead(Addr Block, CoreId Core);
  void onWrite(Addr Block, CoreId Core, unsigned Offset, unsigned Size);
  void onInvalidation(Addr Block, CoreId Victim);
  void onDowngrade(Addr Block, CoreId Owner);
  void onReconcile(Addr Block, unsigned Holders);
  void onWardGrant(Addr Block, CoreId Core);
  void onDemandMiss(Addr Block, CoreId Core, Cycles Latency, bool Remote);
  /// A demand miss that re-fetched a block \p Core itself lost to a
  /// capacity eviction. Always follows the onDemandMiss() for the same
  /// access, so it only bumps the attribution counter.
  void onPrematureMiss(Addr Block, CoreId Core);

  // --- Reporting ------------------------------------------------------------

  /// Builds the run's report: the top \p TopN lines by traffic plus the
  /// full per-site rollup.
  ProfileReport report(std::size_t TopN = 32) const;

  /// Emits a final Perfetto counter sample for every claimed contention
  /// track so the tracks extend to end-of-run time (Observability::Now).
  /// Live samples are emitted as events arrive; see noteContention().
  void finishCounters() const;

  std::size_t trackedLines() const { return Table.size(); }
  std::uint64_t droppedLines() const { return Dropped; }

private:
  struct LineRecord {
    std::uint64_t Invalidations = 0;
    std::uint64_t Downgrades = 0;
    std::uint64_t Reconciles = 0;
    std::uint64_t WardGrants = 0;
    std::uint64_t RemoteHops = 0;
    std::uint64_t DemandMisses = 0;
    std::uint64_t DemandMissCycles = 0;
    std::uint64_t PrematureMisses = 0;
    std::uint64_t WriterHandoffs = 0;
    std::uint64_t PingPongs = 0;
    CoreMask Readers;
    CoreMask Writers;
    CoreId LastWriter = InvalidCore;
    CoreId PrevWriter = InvalidCore; ///< Writer before LastWriter.
    /// Per-core byte footprints (small: sharer sets are small in practice).
    std::vector<std::pair<CoreId, SectorMask>> Footprints;
    bool OverlapWritten = false; ///< Two cores wrote a common byte.
    /// Perfetto contention-counter track state: name once claimed, and a
    /// per-line sample cap so hot lines cannot bloat the trace.
    std::string CounterName;
    std::uint32_t CounterSamples = 0;

    std::uint64_t traffic() const {
      return Invalidations + Downgrades + Reconciles + WardGrants +
             DemandMisses;
    }
  };

  /// Finds or admits the record for \p Block; null when the table is full
  /// and the admission sampler declines.
  LineRecord *lookup(Addr Block);

  SharingClass classify(const LineRecord &R) const;
  void fillProfile(Addr Block, const LineRecord &R, LineProfile &P) const;

  /// Live Perfetto counter sampling: once a line's inv+down crosses
  /// ClaimThreshold it claims one of MaxCounterTracks counter tracks, and
  /// every further contention event emits a cumulative sample at the
  /// current simulated time.
  void noteContention(Addr Block, LineRecord &R);

  static constexpr std::uint64_t ClaimThreshold = 8;
  static constexpr unsigned MaxCounterTracks = 8;
  static constexpr std::uint32_t MaxCounterSamples = 256;

  std::size_t Capacity;
  unsigned AdmitShift;
  std::unordered_map<Addr, LineRecord> Table;
  const MemoryMap *Map = nullptr;
  Observability *Obs = nullptr; ///< For live counter samples; not owned.
  unsigned ClaimedTracks = 0;
  std::uint64_t Dropped = 0;      ///< Events landing on untracked lines.
  std::uint64_t AdmitCounter = 0; ///< Drives the deterministic sampler.
};

} // namespace warden

#endif // WARDEN_OBS_SHARINGPROFILER_H
