//===- obs/TimelineSampler.h - Periodic time-series snapshots -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samples machine-level rates into a time series as simulated time
/// advances: interval IPC, invalidation and downgrade rates, region-table
/// occupancy, and the per-core busy fraction — the quantities behind the
/// paper's time-series figures. The replay scheduler calls tick() with the
/// global simulated time (the minimum over core clocks, which only moves
/// forward); a sample is captured whenever time crosses the configured
/// cadence boundary, stamped at the actual crossing instant so the series
/// is deterministic for a given (trace, machine, seed).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_TIMELINESAMPLER_H
#define WARDEN_OBS_TIMELINESAMPLER_H

#include "src/support/Types.h"

#include <cstdint>
#include <vector>

namespace warden {

class JsonWriter;

/// Cumulative machine counters the sampler differentiates into rates.
struct TimelineInputs {
  std::uint64_t Instructions = 0;
  std::uint64_t Invalidations = 0;
  std::uint64_t Downgrades = 0;
  unsigned RegionOccupancy = 0;
  /// Cumulative busy (strand-executing) cycles per core; null when the
  /// caller does not track them.
  const std::vector<Cycles> *BusyCycles = nullptr;
};

/// One point of the time series. All rates are over the window ending at
/// `Cycle` (since the previous sample).
struct TimelineSample {
  Cycles Cycle = 0;
  double Ipc = 0;            ///< Instructions per cycle in the window.
  double InvPerKCycle = 0;   ///< Invalidations per 1000 cycles.
  double DownPerKCycle = 0;  ///< Downgrades per 1000 cycles.
  unsigned RegionOccupancy = 0; ///< Live WARD regions at the sample instant.
  double BusyFraction = 0;   ///< Mean fraction of cores executing strands.

  bool operator==(const TimelineSample &) const = default;
};

/// Captures TimelineSamples every ~Interval simulated cycles.
class TimelineSampler {
public:
  explicit TimelineSampler(Cycles Interval = 10000)
      : Interval(Interval ? Interval : 1), NextSample(this->Interval) {}

  /// Called with non-decreasing \p Now; captures a sample when \p Now
  /// reaches the next cadence boundary.
  void tick(Cycles Now, const TimelineInputs &In) {
    if (Now >= NextSample)
      capture(Now, In);
  }

  /// Records a trailing partial-window sample at end of run.
  void finalize(Cycles Now, const TimelineInputs &In) {
    if (Now > LastCycle)
      capture(Now, In);
  }

  const std::vector<TimelineSample> &samples() const { return Samples; }
  Cycles interval() const { return Interval; }

  /// Emits the series as one JSON array of sample objects onto \p W.
  void writeJson(JsonWriter &W) const;

private:
  void capture(Cycles At, const TimelineInputs &In);

  Cycles Interval;
  Cycles NextSample;
  Cycles LastCycle = 0;
  std::uint64_t LastInstructions = 0;
  std::uint64_t LastInvalidations = 0;
  std::uint64_t LastDowngrades = 0;
  std::uint64_t LastBusySum = 0;
  std::vector<TimelineSample> Samples;
};

} // namespace warden

#endif // WARDEN_OBS_TIMELINESAMPLER_H
