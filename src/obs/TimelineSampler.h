//===- obs/TimelineSampler.h - Periodic time-series snapshots -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samples machine-level rates into a time series as simulated time
/// advances: interval IPC, invalidation and downgrade rates, region-table
/// occupancy, and the per-core busy fraction — the quantities behind the
/// paper's time-series figures. Under a log-coherence backend (racoh) the
/// series additionally carries the log-traffic rates (publishes, consumed
/// records, backpressure stalls, pre-invalidate avoidance, cross-node
/// hops). The replay scheduler calls tick() with the global simulated time
/// (the minimum over core clocks, which only moves forward); a sample is
/// captured whenever time crosses the configured cadence boundary, stamped
/// at the actual crossing instant so the series is deterministic for a
/// given (trace, machine, seed). Runs shorter than one cadence interval
/// still get one trailing sample from finalize(), so the series is never
/// empty for a non-trivial run.
///
/// attachTrace() mirrors every captured sample into Perfetto counter
/// tracks ("timeline.*", plus "racoh.*" under log coherence), composing
/// the time series with the task spans the ChromeTraceExporter records.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_TIMELINESAMPLER_H
#define WARDEN_OBS_TIMELINESAMPLER_H

#include "src/support/Types.h"

#include <cstdint>
#include <vector>

namespace warden {

class ChromeTraceExporter;
class JsonWriter;

/// Cumulative machine counters the sampler differentiates into rates.
struct TimelineInputs {
  std::uint64_t Instructions = 0;
  std::uint64_t Invalidations = 0;
  std::uint64_t Downgrades = 0;
  unsigned RegionOccupancy = 0;
  /// Cumulative busy (strand-executing) cycles per core; null when the
  /// caller does not track them.
  const std::vector<Cycles> *BusyCycles = nullptr;

  /// True under a log-coherence backend (racoh): the cumulative log
  /// counters below are meaningful and the sample carries their rates.
  bool LogCoherence = false;
  std::uint64_t LogPublishes = 0;
  std::uint64_t LogRecordsPublished = 0;
  std::uint64_t LogRecordsConsumed = 0;
  std::uint64_t LogBackpressureStalls = 0;
  std::uint64_t LogInvalidations = 0;
  std::uint64_t PreInvalidateAvoided = 0;
  std::uint64_t CrossNodeHops = 0;
  std::uint64_t LogQueuePeakOccupancy = 0;
};

/// One point of the time series. All rates are over the window ending at
/// `Cycle` (since the previous sample).
struct TimelineSample {
  Cycles Cycle = 0;
  double Ipc = 0;            ///< Instructions per cycle in the window.
  double InvPerKCycle = 0;   ///< Invalidations per 1000 cycles.
  double DownPerKCycle = 0;  ///< Downgrades per 1000 cycles.
  unsigned RegionOccupancy = 0; ///< Live WARD regions at the sample instant.
  double BusyFraction = 0;   ///< Mean fraction of cores executing strands.

  /// Log-coherence series (racoh; all zero and omitted from JSON under
  /// eager backends so their output is unchanged).
  bool LogCoherence = false;
  double LogPublishesPerKCycle = 0;
  double LogRecordsPublishedPerKCycle = 0;
  double LogRecordsConsumedPerKCycle = 0;
  double LogBackpressurePerKCycle = 0;
  double LogInvPerKCycle = 0;
  double PreInvAvoidedPerKCycle = 0;
  double CrossNodeHopsPerKCycle = 0;
  std::uint64_t LogQueuePeak = 0; ///< Running peak at the sample instant.

  bool operator==(const TimelineSample &) const = default;
};

/// Captures TimelineSamples every ~Interval simulated cycles.
class TimelineSampler {
public:
  explicit TimelineSampler(Cycles Interval = 10000)
      : Interval(Interval ? Interval : 1), NextSample(this->Interval) {}

  /// Mirrors every captured sample into \p Trace's counter tracks
  /// (detach with nullptr). Recording only — cycle-identical either way.
  void attachTrace(ChromeTraceExporter *NewTrace) { Trace = NewTrace; }

  /// Called with non-decreasing \p Now; captures a sample when \p Now
  /// reaches the next cadence boundary.
  void tick(Cycles Now, const TimelineInputs &In) {
    if (Now >= NextSample)
      capture(Now, In);
  }

  /// Records a trailing partial-window sample at end of run. Runs shorter
  /// than one interval (which never crossed a cadence boundary) get their
  /// single sample here rather than an empty series.
  void finalize(Cycles Now, const TimelineInputs &In) {
    if (Now > LastCycle || Samples.empty())
      capture(Now, In);
  }

  const std::vector<TimelineSample> &samples() const { return Samples; }
  Cycles interval() const { return Interval; }

  /// Emits the series as one JSON array of sample objects onto \p W.
  void writeJson(JsonWriter &W) const;

private:
  void capture(Cycles At, const TimelineInputs &In);

  Cycles Interval;
  Cycles NextSample;
  Cycles LastCycle = 0;
  std::uint64_t LastInstructions = 0;
  std::uint64_t LastInvalidations = 0;
  std::uint64_t LastDowngrades = 0;
  std::uint64_t LastBusySum = 0;
  std::uint64_t LastLogPublishes = 0;
  std::uint64_t LastLogRecordsPublished = 0;
  std::uint64_t LastLogRecordsConsumed = 0;
  std::uint64_t LastLogBackpressure = 0;
  std::uint64_t LastLogInvalidations = 0;
  std::uint64_t LastPreInvAvoided = 0;
  std::uint64_t LastCrossNodeHops = 0;
  std::vector<TimelineSample> Samples;
  ChromeTraceExporter *Trace = nullptr; ///< Optional mirror; not owned.
};

} // namespace warden

#endif // WARDEN_OBS_TIMELINESAMPLER_H
