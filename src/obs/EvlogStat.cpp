//===- obs/EvlogStat.cpp - Offline event-log queries ----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/EvlogStat.h"

#include "src/obs/ChromeTraceExporter.h"

#include <algorithm>
#include <cstdio>

namespace warden {

namespace {

bool kindIs(const std::string &Filter, EvKind Kind) {
  return Filter == evKindName(Kind);
}

/// Parses a kind filter; false (with Error) on an unknown name.
bool parseKind(const std::string &Filter, EvKind &Kind, std::string &Error) {
  for (unsigned K = 1; K < NumEvKinds; ++K)
    if (kindIs(Filter, static_cast<EvKind>(K))) {
      Kind = static_cast<EvKind>(K);
      return true;
    }
  Error = "unknown event kind '" + Filter + "'";
  return false;
}

std::string formatAddr(Addr Address) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(Address));
  return Buf;
}

/// Per-line tally used by top-N and diff.
struct LineTally {
  std::uint64_t Events = 0;
  std::uint64_t Inv = 0;
  std::uint64_t Down = 0;
  std::uint64_t Miss = 0;
  std::uint64_t MissCycles = 0;
};

/// WARD region intervals rebuilt from a log's RegionAdd/RegionExtent
/// companion pairs, for address -> region attribution.
struct RegionIntervals {
  struct Interval {
    Addr Start = 0;
    Addr End = 0;
    std::uint32_t Id = 0;
  };
  std::vector<Interval> Sorted; ///< By Start; deduplicated.

  void finishCollect(std::map<std::uint32_t, std::pair<Addr, Addr>> &ById) {
    for (const auto &[Id, Geometry] : ById)
      if (Geometry.second > Geometry.first)
        Sorted.push_back({Geometry.first, Geometry.second, Id});
    std::sort(Sorted.begin(), Sorted.end(),
              [](const Interval &L, const Interval &R) {
                return L.Start < R.Start;
              });
  }

  /// Region owning \p Address, or InvalidRegionName sentinel (-1).
  std::uint32_t regionOf(Addr Address) const {
    auto It = std::upper_bound(Sorted.begin(), Sorted.end(), Address,
                               [](Addr A, const Interval &I) {
                                 return A < I.Start;
                               });
    if (It == Sorted.begin())
      return static_cast<std::uint32_t>(-1);
    --It;
    return Address < It->End ? It->Id : static_cast<std::uint32_t>(-1);
  }
};

/// One streaming pass: summary, per-line tallies, and region geometry.
struct ScanResult {
  EvlogSummary Summary;
  std::map<Addr, LineTally> Lines;
  RegionIntervals Regions;
  std::map<Addr, std::uint64_t> FilterHits; ///< Per-line count of Filter kind.
};

bool scan(const std::string &Path, ScanResult &Out, std::string &Error,
          const EvKind *Filter = nullptr) {
  EvlogReader Reader;
  if (!Reader.open(Path)) {
    Error = Reader.error();
    return false;
  }
  Out.Summary.Header = Reader.header();

  // RegionAdd parks the start; the companion RegionExtent completes the
  // interval. Re-added ids overwrite (last geometry wins).
  std::map<std::uint32_t, std::pair<Addr, Addr>> RegionById;

  EvRecord R;
  bool First = true;
  while (Reader.next(R)) {
    ++Out.Summary.Records;
    if (First || R.Cycle < Out.Summary.FirstCycle)
      Out.Summary.FirstCycle = R.Cycle;
    if (First || R.Cycle > Out.Summary.LastCycle)
      Out.Summary.LastCycle = R.Cycle;
    First = false;
    unsigned K = static_cast<unsigned>(R.Kind);
    if (K < NumEvKinds)
      ++Out.Summary.ByKind[K];
    ++Out.Summary.ByCore[R.Core];
    if (Filter && R.Kind == *Filter)
      ++Out.FilterHits[R.Address];

    switch (R.Kind) {
    case EvKind::DemandMiss: {
      Out.Summary.MissCycles += R.Payload;
      LineTally &T = Out.Lines[R.Address];
      ++T.Events;
      ++T.Miss;
      T.MissCycles += R.Payload;
      break;
    }
    case EvKind::Invalidation:
    case EvKind::LogInvalidation: {
      LineTally &T = Out.Lines[R.Address];
      ++T.Events;
      ++T.Inv;
      break;
    }
    case EvKind::Downgrade: {
      LineTally &T = Out.Lines[R.Address];
      ++T.Events;
      ++T.Down;
      break;
    }
    case EvKind::Eviction:
    case EvKind::WardGrant:
    case EvKind::Reconcile:
    case EvKind::FaultEviction:
    case EvKind::ForcedReconcile:
      ++Out.Lines[R.Address].Events;
      break;
    case EvKind::SyncAcquire:
    case EvKind::SyncRelease:
      Out.Summary.SyncCycles += R.Payload;
      break;
    case EvKind::RegionAdd:
      RegionById[R.Payload].first = R.Address;
      break;
    case EvKind::RegionExtent:
      RegionById[R.Payload].second = R.Address;
      break;
    default:
      break;
    }
  }
  if (!Reader.error().empty()) {
    Error = Reader.error();
    return false;
  }
  Out.Regions.finishCollect(RegionById);
  return true;
}

std::string siteNameFor(const EvlogHeader &Header, Addr Block) {
  return Header.siteName(Header.siteOf(Block));
}

} // namespace

bool evlogSummarize(const std::string &Path, EvlogSummary &Out,
                    std::string &Error) {
  ScanResult Scan_;
  if (!scan(Path, Scan_, Error))
    return false;
  Out = Scan_.Summary;
  return true;
}

bool evlogTopLines(const std::string &Path, std::size_t N,
                   const std::string &KindFilter, std::vector<LineStat> &Out,
                   std::string &Error) {
  EvKind Filter = EvKind::DemandMiss;
  bool Filtered = !KindFilter.empty();
  if (Filtered && !parseKind(KindFilter, Filter, Error))
    return false;

  ScanResult Scan_;
  if (!scan(Path, Scan_, Error, Filtered ? &Filter : nullptr))
    return false;
  // Lines the tally pass never touched (the filter kind is not one of the
  // contention kinds) still deserve a row — ranking is by the filter count.
  if (Filtered)
    for (const auto &[Block, Hits] : Scan_.FilterHits) {
      (void)Hits;
      Scan_.Lines[Block];
    }

  Out.clear();
  Out.reserve(Scan_.Lines.size());
  for (const auto &[Block, T] : Scan_.Lines) {
    LineStat S;
    S.Block = Block;
    if (Filtered) {
      auto It = Scan_.FilterHits.find(Block);
      S.Events = It == Scan_.FilterHits.end() ? 0 : It->second;
    } else {
      S.Events = T.Events;
    }
    S.Invalidations = T.Inv;
    S.Downgrades = T.Down;
    S.Misses = T.Miss;
    S.MissCycles = T.MissCycles;
    S.Site = Scan_.Summary.Header.siteOf(Block);
    S.SiteName = Scan_.Summary.Header.siteName(S.Site);
    Out.push_back(std::move(S));
  }
  auto Score = [Filtered](const LineStat &S) {
    return Filtered ? S.Events : S.contention();
  };
  std::sort(Out.begin(), Out.end(),
            [&](const LineStat &L, const LineStat &R) {
              if (Score(L) != Score(R))
                return Score(L) > Score(R);
              return L.Block < R.Block;
            });
  if (Out.size() > N)
    Out.resize(N);
  return true;
}

bool evlogWindowRates(const std::string &Path, Cycles Window,
                      std::vector<WindowStat> &Out, std::string &Error) {
  EvlogSummary Summary;
  if (!evlogSummarize(Path, Summary, Error))
    return false;
  Cycles Span = Summary.LastCycle + 1;
  if (Window == 0)
    Window = std::max<Cycles>(1, Span / 100);

  std::map<std::uint64_t, WindowStat> ByIndex;
  EvlogReader Reader;
  if (!Reader.open(Path)) {
    Error = Reader.error();
    return false;
  }
  EvRecord R;
  while (Reader.next(R)) {
    std::uint64_t Index = R.Cycle / Window;
    WindowStat &W = ByIndex[Index];
    W.Start = Index * Window;
    unsigned K = static_cast<unsigned>(R.Kind);
    if (K < NumEvKinds)
      ++W.ByKind[K];
  }
  if (!Reader.error().empty()) {
    Error = Reader.error();
    return false;
  }

  Out.clear();
  if (ByIndex.empty())
    return true;
  std::uint64_t MaxIndex = ByIndex.rbegin()->first;
  Out.resize(MaxIndex + 1);
  for (std::uint64_t I = 0; I <= MaxIndex; ++I)
    Out[I].Start = I * Window;
  for (auto &[Index, W] : ByIndex)
    Out[Index] = W;
  return true;
}

bool evlogDiff(const std::string &PathA, const std::string &PathB,
               EvlogDiff &Out, std::string &Error) {
  ScanResult A, B;
  if (!scan(PathA, A, Error) || !scan(PathB, B, Error))
    return false;
  Out.A = A.Summary;
  Out.B = B.Summary;

  // --- Lines: the union of both logs' touched blocks ----------------------
  // Sites come from whichever header has a mapping (the logs describe the
  // same recorded workload, so the tables agree when both are present).
  const EvlogHeader &SiteSource =
      A.Summary.Header.Sites.empty() ? B.Summary.Header : A.Summary.Header;
  const RegionIntervals &RegionSource =
      A.Regions.Sorted.empty() ? B.Regions : A.Regions;

  std::map<Addr, std::pair<LineTally, LineTally>> Joined;
  for (const auto &[Block, T] : A.Lines)
    Joined[Block].first = T;
  for (const auto &[Block, T] : B.Lines)
    Joined[Block].second = T;

  std::map<std::string, DiffEntry> BySite;
  std::map<std::uint32_t, DiffEntry> ByRegion;
  Out.Lines.clear();
  Out.Lines.reserve(Joined.size());
  for (const auto &[Block, Pair] : Joined) {
    const LineTally &TA = Pair.first;
    const LineTally &TB = Pair.second;
    DiffEntry E;
    E.Block = Block;
    E.Name = formatAddr(Block);
    E.InvA = TA.Inv;
    E.InvB = TB.Inv;
    E.DownA = TA.Down;
    E.DownB = TB.Down;
    E.MissA = TA.Miss;
    E.MissB = TB.Miss;
    E.MissCyclesA = TA.MissCycles;
    E.MissCyclesB = TB.MissCycles;

    std::string Site = siteNameFor(SiteSource, Block);
    DiffEntry &SE = BySite[Site];
    SE.Name = Site;
    SE.InvA += E.InvA;
    SE.InvB += E.InvB;
    SE.DownA += E.DownA;
    SE.DownB += E.DownB;
    SE.MissA += E.MissA;
    SE.MissB += E.MissB;
    SE.MissCyclesA += E.MissCyclesA;
    SE.MissCyclesB += E.MissCyclesB;

    std::uint32_t Region = RegionSource.regionOf(Block);
    if (Region != static_cast<std::uint32_t>(-1)) {
      DiffEntry &RE = ByRegion[Region];
      RE.Name = "region " + std::to_string(Region);
      RE.InvA += E.InvA;
      RE.InvB += E.InvB;
      RE.DownA += E.DownA;
      RE.DownB += E.DownB;
      RE.MissA += E.MissA;
      RE.MissB += E.MissB;
      RE.MissCyclesA += E.MissCyclesA;
      RE.MissCyclesB += E.MissCyclesB;
    }
    Out.Lines.push_back(std::move(E));
  }

  auto Order = [](const DiffEntry &L, const DiffEntry &R) {
    std::int64_t DL = L.contentionDelta(), DR = R.contentionDelta();
    std::uint64_t AL = DL < 0 ? -DL : DL, AR = DR < 0 ? -DR : DR;
    if (AL != AR)
      return AL > AR;
    std::uint64_t SL = L.contentionA() + L.contentionB();
    std::uint64_t SR = R.contentionA() + R.contentionB();
    if (SL != SR)
      return SL > SR;
    return L.Name < R.Name;
  };
  std::sort(Out.Lines.begin(), Out.Lines.end(), Order);

  Out.Sites.clear();
  for (auto &[Name, E] : BySite)
    Out.Sites.push_back(E);
  std::sort(Out.Sites.begin(), Out.Sites.end(), Order);

  Out.Regions.clear();
  for (auto &[Id, E] : ByRegion)
    Out.Regions.push_back(E);
  std::sort(Out.Regions.begin(), Out.Regions.end(), Order);
  return true;
}

bool evlogExportPerfetto(const std::string &Path, Cycles Window,
                         ChromeTraceExporter &Trace, std::string &Error) {
  std::vector<WindowStat> Windows;
  if (!evlogWindowRates(Path, Window, Windows, Error))
    return false;
  if (Windows.empty())
    return true;
  Cycles Width =
      Windows.size() > 1 ? Windows[1].Start - Windows[0].Start : Window;
  if (Width == 0)
    Width = 1;

  // Only kinds that occur get a track; an all-zero counter line is noise.
  std::array<std::uint64_t, NumEvKinds> Totals{};
  for (const WindowStat &W : Windows)
    for (unsigned K = 1; K < NumEvKinds; ++K)
      Totals[K] += W.ByKind[K];

  for (unsigned K = 1; K < NumEvKinds; ++K) {
    if (Totals[K] == 0)
      continue;
    std::string Name =
        std::string("evlog.") + evKindName(static_cast<EvKind>(K)) +
        "_per_kcycle";
    for (const WindowStat &W : Windows) {
      double Rate = static_cast<double>(W.ByKind[K]) * 1000.0 /
                    static_cast<double>(Width);
      Trace.counter(Name, W.Start, Rate);
    }
  }
  return true;
}

} // namespace warden
