//===- obs/EvlogStat.h - Offline event-log queries ------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline queries over warden-evlog-v1 files: whole-run summaries, top-N
/// contended lines, time-windowed event rates, Perfetto counter-track
/// export, and — the forensic payoff — a cross-protocol diff that aligns
/// two logs of the same workload and attributes the invalidation /
/// downgrade / miss deltas to specific lines, allocation sites, and WARD
/// regions. `tools/warden-stat` is a thin CLI over these functions; tests
/// call them directly.
///
/// All queries stream through EvlogReader (one record of state), so they
/// handle logs far larger than host memory. Aggregation tables are keyed
/// deterministically (ordered maps, ties broken by address), so query
/// output is byte-stable for byte-identical logs.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_EVLOGSTAT_H
#define WARDEN_OBS_EVLOGSTAT_H

#include "src/obs/EventLog.h"
#include "src/trace/TaskGraph.h"

#include <array>
#include <map>
#include <string>
#include <vector>

namespace warden {

class ChromeTraceExporter;

/// One more than the largest EvKind value: per-kind tables index by the
/// raw kind byte (slot 0 unused).
inline constexpr unsigned NumEvKinds =
    static_cast<unsigned>(EvKind::Steal) + 1;

/// Whole-run rollup of one log.
struct EvlogSummary {
  EvlogHeader Header;
  std::uint64_t Records = 0;
  Cycles FirstCycle = 0;
  Cycles LastCycle = 0;
  std::array<std::uint64_t, NumEvKinds> ByKind{};
  /// Per acting core (EventLog::DirectorySource groups directory events).
  std::map<std::uint16_t, std::uint64_t> ByCore;
  std::uint64_t MissCycles = 0; ///< Sum of DemandMiss payloads.
  std::uint64_t SyncCycles = 0; ///< Sum of Sync{Acquire,Release} payloads.

  std::uint64_t invalidations() const {
    return ByKind[static_cast<unsigned>(EvKind::Invalidation)] +
           ByKind[static_cast<unsigned>(EvKind::LogInvalidation)];
  }
  std::uint64_t downgrades() const {
    return ByKind[static_cast<unsigned>(EvKind::Downgrade)];
  }
  std::uint64_t misses() const {
    return ByKind[static_cast<unsigned>(EvKind::DemandMiss)];
  }
};

/// Per-line contention rollup (one cache block).
struct LineStat {
  Addr Block = 0;
  std::uint64_t Events = 0;
  std::uint64_t Invalidations = 0; ///< Includes racoh log invalidations.
  std::uint64_t Downgrades = 0;
  std::uint64_t Misses = 0;
  std::uint64_t MissCycles = 0;
  std::uint32_t Site = InvalidSite;
  std::string SiteName;

  /// The contention score top-N ranks by.
  std::uint64_t contention() const { return Invalidations + Downgrades; }
};

/// Event counts inside one [Start, Start+Window) cycle window.
struct WindowStat {
  Cycles Start = 0;
  std::array<std::uint64_t, NumEvKinds> ByKind{};
  std::uint64_t total() const {
    std::uint64_t T = 0;
    for (std::uint64_t C : ByKind)
      T += C;
    return T;
  }
};

/// One row of a cross-protocol diff: a line, site, or region with its
/// counts under log A and log B.
struct DiffEntry {
  std::string Name;  ///< "0x1f80", site name, or "region 3".
  Addr Block = 0;    ///< Valid for line rows only.
  std::uint64_t InvA = 0, InvB = 0;
  std::uint64_t DownA = 0, DownB = 0;
  std::uint64_t MissA = 0, MissB = 0;
  std::uint64_t MissCyclesA = 0, MissCyclesB = 0;

  std::uint64_t contentionA() const { return InvA + DownA; }
  std::uint64_t contentionB() const { return InvB + DownB; }
  /// Positive: B is cheaper (A pays more coherence work).
  std::int64_t contentionDelta() const {
    return static_cast<std::int64_t>(contentionA()) -
           static_cast<std::int64_t>(contentionB());
  }
};

/// Full cross-protocol diff: summaries of both logs plus the deltas
/// attributed at three granularities, each sorted by |contention delta|
/// descending (ties by name, for deterministic output).
struct EvlogDiff {
  EvlogSummary A, B;
  std::vector<DiffEntry> Lines;
  std::vector<DiffEntry> Sites;
  std::vector<DiffEntry> Regions;
};

/// Streams \p Path once into \p Out. False with \p Error set on damage.
bool evlogSummarize(const std::string &Path, EvlogSummary &Out,
                    std::string &Error);

/// The \p N most contended lines of \p Path, ranked by
/// invalidations+downgrades (ties by address). \p KindFilter restricts the
/// ranking to one event kind's count ("invalidation", "demand_miss", ...);
/// empty ranks by the default contention score.
bool evlogTopLines(const std::string &Path, std::size_t N,
                   const std::string &KindFilter, std::vector<LineStat> &Out,
                   std::string &Error);

/// Event counts per \p Window cycles (window 0 picks ~100 windows across
/// the run). Windows with zero events are included, so rates plot evenly.
bool evlogWindowRates(const std::string &Path, Cycles Window,
                      std::vector<WindowStat> &Out, std::string &Error);

/// Aligns two logs of the same workload and attributes contention deltas
/// to lines, allocation sites (from the headers' interned tables), and
/// WARD regions (rebuilt from each log's RegionAdd/RegionExtent pairs).
bool evlogDiff(const std::string &PathA, const std::string &PathB,
               EvlogDiff &Out, std::string &Error);

/// Renders windowed per-kind event-rate counter tracks into \p Trace
/// (composing with whatever task spans / instants it already holds).
/// Counter names are "evlog.<kind>_per_kcycle".
bool evlogExportPerfetto(const std::string &Path, Cycles Window,
                         ChromeTraceExporter &Trace, std::string &Error);

} // namespace warden

#endif // WARDEN_OBS_EVLOGSTAT_H
