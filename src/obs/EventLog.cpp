//===- obs/EventLog.cpp - Streaming binary coherence event log ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/EventLog.h"

#include "src/coherence/Protocol.h"
#include "src/machine/MachineConfig.h"
#include "src/mem/ReplacementPolicy.h"
#include "src/trace/TaskGraph.h"

#include <algorithm>
#include <cstring>

namespace warden {

namespace {

constexpr char Magic[8] = {'W', 'E', 'V', 'L', 'O', 'G', '1', '\0'};
constexpr std::uint32_t FormatVersion = 1;
constexpr std::uint32_t RecordSize = 32;

// All multi-byte fields are explicitly little-endian regardless of host
// byte order: the .evlog bytes are compared across machines in CI.
void put16(unsigned char *P, std::uint16_t V) {
  P[0] = static_cast<unsigned char>(V);
  P[1] = static_cast<unsigned char>(V >> 8);
}

void put32(unsigned char *P, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    P[I] = static_cast<unsigned char>(V >> (8 * I));
}

void put64(unsigned char *P, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    P[I] = static_cast<unsigned char>(V >> (8 * I));
}

std::uint16_t get16(const unsigned char *P) {
  return static_cast<std::uint16_t>(P[0] | (P[1] << 8));
}

std::uint32_t get32(const unsigned char *P) {
  std::uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

std::uint64_t get64(const unsigned char *P) {
  std::uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | P[I];
  return V;
}

void packRecord(const EvRecord &R, unsigned char (&Buf)[RecordSize]) {
  put64(Buf + 0, R.Seq);
  put64(Buf + 8, R.Cycle);
  put64(Buf + 16, R.Address);
  put32(Buf + 24, R.Payload);
  put16(Buf + 28, R.Core);
  Buf[30] = static_cast<unsigned char>(R.Kind);
  Buf[31] = R.Arg;
}

void unpackRecord(const unsigned char (&Buf)[RecordSize], EvRecord &R) {
  R.Seq = get64(Buf + 0);
  R.Cycle = get64(Buf + 8);
  R.Address = get64(Buf + 16);
  R.Payload = get32(Buf + 24);
  R.Core = get16(Buf + 28);
  R.Kind = static_cast<EvKind>(Buf[30]);
  R.Arg = Buf[31];
}

bool writeBytes(std::FILE *F, const void *Data, std::size_t Size) {
  return std::fwrite(Data, 1, Size, F) == Size;
}

bool writeU32(std::FILE *F, std::uint32_t V) {
  unsigned char Buf[4];
  put32(Buf, V);
  return writeBytes(F, Buf, 4);
}

bool writeU64(std::FILE *F, std::uint64_t V) {
  unsigned char Buf[8];
  put64(Buf, V);
  return writeBytes(F, Buf, 8);
}

bool writeString(std::FILE *F, const std::string &S) {
  return writeU32(F, static_cast<std::uint32_t>(S.size())) &&
         writeBytes(F, S.data(), S.size());
}

bool readBytes(std::FILE *F, void *Data, std::size_t Size) {
  return std::fread(Data, 1, Size, F) == Size;
}

bool readU32(std::FILE *F, std::uint32_t &V) {
  unsigned char Buf[4];
  if (!readBytes(F, Buf, 4))
    return false;
  V = get32(Buf);
  return true;
}

bool readU64(std::FILE *F, std::uint64_t &V) {
  unsigned char Buf[8];
  if (!readBytes(F, Buf, 8))
    return false;
  V = get64(Buf);
  return true;
}

bool readString(std::FILE *F, std::string &S, std::uint32_t MaxLen = 1u << 20) {
  std::uint32_t Len = 0;
  if (!readU32(F, Len) || Len > MaxLen)
    return false;
  S.resize(Len);
  return Len == 0 || readBytes(F, S.data(), Len);
}

} // namespace

const char *evKindName(EvKind Kind) {
  switch (Kind) {
  case EvKind::DemandMiss:
    return "demand_miss";
  case EvKind::Invalidation:
    return "invalidation";
  case EvKind::Downgrade:
    return "downgrade";
  case EvKind::Eviction:
    return "eviction";
  case EvKind::WardGrant:
    return "ward_grant";
  case EvKind::Reconcile:
    return "reconcile";
  case EvKind::RegionAdd:
    return "region_add";
  case EvKind::RegionExtent:
    return "region_extent";
  case EvKind::RegionRemove:
    return "region_remove";
  case EvKind::RegionOverflow:
    return "region_overflow";
  case EvKind::SyncAcquire:
    return "sync_acquire";
  case EvKind::SyncRelease:
    return "sync_release";
  case EvKind::LogPublish:
    return "log_publish";
  case EvKind::LogBackpressure:
    return "log_backpressure";
  case EvKind::LogInvalidation:
    return "log_invalidation";
  case EvKind::PreInvalidateAvoided:
    return "pre_invalidate_avoided";
  case EvKind::FaultEviction:
    return "fault_eviction";
  case EvKind::ForcedReconcile:
    return "forced_reconcile";
  case EvKind::Steal:
    return "steal";
  case EvKind::PrematureMiss:
    return "premature_miss";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// EventLog
//===----------------------------------------------------------------------===//

EventLog::~EventLog() { closeShards(/*Remove=*/true); }

void EventLog::configure(std::string NewBase, std::size_t NewRingCapacity) {
  Base = std::move(NewBase);
  RingCapacity = std::max<std::size_t>(1, NewRingCapacity);
}

void EventLog::setRunLabel(std::string NewLabel) { Label = std::move(NewLabel); }

void EventLog::beginRun(const MachineConfig &Config, const MemoryMap *Map) {
  if (!enabled())
    return;
  closeShards(/*Remove=*/true);
  ProtocolId = protocolId(Config.Protocol);
  RunPath = Base + "." + ProtocolId + ".evlog";
  if (Config.Replacement != DefaultReplacementId)
    // Matrix runs log one file per protocol x replacement cell; the
    // default policy keeps the historical name so existing tooling and
    // baselines are untouched.
    RunPath = Base + "." + ProtocolId + "." + Config.Replacement + ".evlog";
  CoreCount = Config.totalCores();
  BlockSize = Config.BlockSize;

  Sites.clear();
  Spans.clear();
  if (Map) {
    Sites.reserve(Map->siteCount());
    for (std::size_t I = 0; I < Map->siteCount(); ++I)
      Sites.emplace_back(Map->siteName(static_cast<std::uint32_t>(I)));
    Spans.reserve(Map->spanCount());
    for (const auto &[Start, EndSite] : Map->spans())
      Spans.push_back({Start, EndSite.first, EndSite.second});
  }

  Seq = 0;
  Buffered = 0;
  PeakBuffered = 0;
  Spills = 0;
  Error.clear();
  // One ring per core plus one for directory-sourced records.
  Rings.assign(CoreCount + 1, Ring{});
  for (auto &R : Rings)
    R.Records.reserve(std::min<std::size_t>(RingCapacity, 4096));
  Armed = true;
}

void EventLog::emit(Cycles Now, EvKind Kind, std::uint16_t Core, Addr Address,
                    std::uint32_t Payload, std::uint8_t Arg) {
  if (!Armed)
    return;
  std::size_t Slot = std::min<std::size_t>(Core, CoreCount);
  Ring &R = Rings[Slot];
  R.Records.push_back({Seq++, Now, Address, Payload, Core, Kind, Arg});
  ++Buffered;
  PeakBuffered = std::max(PeakBuffered, Buffered);
  if (R.Records.size() >= RingCapacity)
    spill(R);
}

bool EventLog::spill(Ring &R) {
  if (!R.Shard) {
    R.ShardPath = RunPath + ".shard" +
                  std::to_string(&R - Rings.data());
    R.Shard = std::fopen(R.ShardPath.c_str(), "wb");
    if (!R.Shard) {
      Error = "cannot open shard file " + R.ShardPath;
      R.Records.clear();
      return false;
    }
  }
  for (const EvRecord &Rec : R.Records) {
    unsigned char Buf[RecordSize];
    packRecord(Rec, Buf);
    if (!writeBytes(R.Shard, Buf, RecordSize)) {
      Error = "short write to shard file " + R.ShardPath;
      break;
    }
  }
  Buffered -= R.Records.size();
  R.Records.clear();
  ++Spills;
  return Error.empty();
}

void EventLog::closeShards(bool Remove) {
  for (auto &R : Rings) {
    if (R.Shard) {
      std::fclose(R.Shard);
      R.Shard = nullptr;
    }
    if (Remove && !R.ShardPath.empty())
      std::remove(R.ShardPath.c_str());
    R.ShardPath.clear();
  }
}

namespace {

/// One merge source: either a spilled shard streamed from disk or a ring
/// tail walked in memory. Holds exactly one look-ahead record, keeping the
/// merge's working set at one record per source.
struct MergeSource {
  std::FILE *File = nullptr;
  const std::vector<EvRecord> *Resident = nullptr;
  std::size_t ResidentNext = 0;
  EvRecord Head;
  bool HasHead = false;

  bool advance() {
    if (File) {
      unsigned char Buf[RecordSize];
      if (!readBytes(File, Buf, RecordSize)) {
        // Shard exhausted; fall through to the ring tail of the same core.
        std::fclose(File);
        File = nullptr;
        return advance();
      }
      unpackRecord(Buf, Head);
      HasHead = true;
      return true;
    }
    if (Resident && ResidentNext < Resident->size()) {
      Head = (*Resident)[ResidentNext++];
      HasHead = true;
      return true;
    }
    HasHead = false;
    return false;
  }
};

} // namespace

bool EventLog::finish() {
  if (!Armed)
    return enabled() && Error.empty();
  Armed = false;

  // Reopen each shard for reading. A shard's records and its ring tail are
  // both in per-core Seq order, so chaining them gives one sorted source
  // per core; a k-way merge on Seq restores the global emission order.
  std::vector<MergeSource> Sources;
  Sources.reserve(Rings.size());
  for (auto &R : Rings) {
    if (R.Shard) {
      std::fclose(R.Shard);
      R.Shard = nullptr;
    }
    MergeSource S;
    if (!R.ShardPath.empty()) {
      S.File = std::fopen(R.ShardPath.c_str(), "rb");
      if (!S.File) {
        Error = "cannot reopen shard file " + R.ShardPath;
        closeShards(/*Remove=*/true);
        return false;
      }
    }
    S.Resident = &R.Records;
    S.advance();
    Sources.push_back(S);
  }

  std::FILE *Out = std::fopen(RunPath.c_str(), "wb");
  bool Ok = Out != nullptr;
  if (!Ok)
    Error = "cannot open " + RunPath;

  if (Ok) {
    Ok = writeBytes(Out, Magic, sizeof(Magic)) &&
         writeU32(Out, FormatVersion) && writeU32(Out, RecordSize) &&
         writeU32(Out, CoreCount) && writeU32(Out, BlockSize) &&
         writeString(Out, ProtocolId) && writeString(Out, Label) &&
         writeU64(Out, Seq);
    if (Ok) {
      Ok = writeU32(Out, static_cast<std::uint32_t>(Sites.size()));
      for (const std::string &S : Sites)
        Ok = Ok && writeString(Out, S);
      Ok = Ok && writeU64(Out, Spans.size());
      for (const SpanRec &S : Spans)
        Ok = Ok && writeU64(Out, S.Start) && writeU64(Out, S.End) &&
             writeU32(Out, S.Site);
    }

    std::uint64_t Written = 0;
    while (Ok) {
      MergeSource *Best = nullptr;
      for (MergeSource &S : Sources)
        if (S.HasHead && (!Best || S.Head.Seq < Best->Head.Seq))
          Best = &S;
      if (!Best)
        break;
      unsigned char Buf[RecordSize];
      packRecord(Best->Head, Buf);
      Ok = writeBytes(Out, Buf, RecordSize);
      ++Written;
      Best->advance();
    }
    if (Ok && Written != Seq) {
      Error = "record count mismatch during merge";
      Ok = false;
    }
    if (!Ok && Error.empty())
      Error = "short write to " + RunPath;
    if (std::fclose(Out) != 0 && Ok) {
      Error = "close failed for " + RunPath;
      Ok = false;
    }
  }

  for (MergeSource &S : Sources)
    if (S.File)
      std::fclose(S.File);
  closeShards(/*Remove=*/true);
  for (auto &R : Rings)
    R.Records.clear();
  Buffered = 0;
  if (Ok)
    LastPath = RunPath;
  return Ok;
}

//===----------------------------------------------------------------------===//
// EvlogHeader / EvlogReader
//===----------------------------------------------------------------------===//

std::uint32_t EvlogHeader::siteOf(Addr Address) const {
  // Spans are sorted by Start and disjoint; binary-search the last span
  // starting at or before Address.
  auto It = std::upper_bound(
      Spans.begin(), Spans.end(), Address,
      [](Addr A, const SpanRec &S) { return A < S.Start; });
  if (It == Spans.begin())
    return InvalidSite;
  --It;
  return Address < It->End ? It->Site : InvalidSite;
}

const std::string &EvlogHeader::siteName(std::uint32_t Site) const {
  static const std::string Unmapped = "<unmapped>";
  return Site < Sites.size() ? Sites[Site] : Unmapped;
}

EvlogReader::~EvlogReader() {
  if (File)
    std::fclose(File);
}

bool EvlogReader::open(const std::string &Path) {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  Header = EvlogHeader();
  Read = 0;
  Error.clear();

  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  char Got[8];
  if (!readBytes(File, Got, 8) || std::memcmp(Got, Magic, 8) != 0) {
    Error = Path + ": not a warden-evlog-v1 file (bad magic)";
    return false;
  }
  bool Ok = readU32(File, Header.Version) && readU32(File, Header.RecordSize) &&
            readU32(File, Header.CoreCount) && readU32(File, Header.BlockSize) &&
            readString(File, Header.ProtocolId) && readString(File, Header.Label) &&
            readU64(File, Header.RecordCount);
  if (Ok && (Header.Version != FormatVersion || Header.RecordSize != RecordSize)) {
    Error = Path + ": unsupported evlog version/record size";
    return false;
  }
  std::uint32_t SiteCount = 0;
  Ok = Ok && readU32(File, SiteCount) && SiteCount <= (1u << 24);
  for (std::uint32_t I = 0; Ok && I < SiteCount; ++I) {
    std::string Name;
    Ok = readString(File, Name);
    if (Ok)
      Header.Sites.push_back(std::move(Name));
  }
  std::uint64_t SpanCount = 0;
  Ok = Ok && readU64(File, SpanCount) && SpanCount <= (1ull << 32);
  for (std::uint64_t I = 0; Ok && I < SpanCount; ++I) {
    EvlogHeader::SpanRec S;
    Ok = readU64(File, S.Start) && readU64(File, S.End) && readU32(File, S.Site);
    if (Ok)
      Header.Spans.push_back(S);
  }
  if (!Ok) {
    Error = Path + ": truncated evlog header";
    return false;
  }
  return true;
}

bool EvlogReader::next(EvRecord &R) {
  if (!File || !Error.empty() || Read >= Header.RecordCount)
    return false;
  unsigned char Buf[RecordSize];
  if (!readBytes(File, Buf, RecordSize)) {
    Error = "truncated evlog record stream";
    return false;
  }
  unpackRecord(Buf, R);
  ++Read;
  return true;
}

} // namespace warden
