//===- obs/EventLog.h - Streaming binary coherence event log --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead streaming binary event log of everything the coherence
/// subsystem and the replay scheduler do: demand misses, invalidations,
/// downgrades, WARD grants and reconciles, region lifecycle, sync points,
/// racoh log traffic, steals, and injected faults. Records are compact
/// fixed-width (32 bytes, little-endian) and carry the simulated cycle, the
/// acting core, the line/region address, and a protocol-specific payload —
/// enough to reconstruct *when* and *where* two protocols diverged, which
/// end-of-run aggregates cannot answer. `tools/warden-stat` queries the
/// files offline (top-N contended lines, windowed rates, cross-protocol
/// diffs with allocation-site attribution).
///
/// The writer follows the Observability zero-perturbation contract:
/// detached costs one null check per hook, attached runs are
/// cycle-identical (tests assert this). Memory stays bounded at any trace
/// length: events buffer in fixed-capacity per-core rings that spill to
/// per-core shard files, and finish() streams a sequence-ordered k-way
/// merge into the final file — no full materialization ever happens. The
/// global sequence number is assigned in emission order by the (serial)
/// simulation, so the merged byte stream is deterministic at any --jobs.
///
/// File format "warden-evlog-v1" (documented in README.md): a header
/// (magic, geometry, protocol id, run label, the MemoryMap's interned
/// allocation-site table and spans) followed by RecordCount packed records.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_EVENTLOG_H
#define WARDEN_OBS_EVENTLOG_H

#include "src/support/Types.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace warden {

class MemoryMap;
struct MachineConfig;

/// What happened. Stored as one byte; values are part of the on-disk
/// format and must never be renumbered, only appended.
enum class EvKind : std::uint8_t {
  DemandMiss = 1,      ///< Payload = end-to-end latency; Arg = AccessType.
  Invalidation = 2,    ///< Core lost its copy. Arg: 0 remote-induced, 1 self.
  Downgrade = 3,       ///< Core lost write permission. Arg as Invalidation.
  Eviction = 4,        ///< Capacity/conflict victim. Arg = 1 when dirty.
  WardGrant = 5,       ///< Miss served in the W state (payload = latency).
  Reconcile = 6,       ///< WARD block reconciled; Payload = holder count.
  RegionAdd = 7,       ///< Addr = region start; Payload = region id.
  RegionExtent = 8,    ///< Companion of RegionAdd: Addr = region end.
  RegionRemove = 9,    ///< Addr = region start; Payload = region id.
  RegionOverflow = 10, ///< Add rejected by the full CAM; Payload = id.
  SyncAcquire = 11,    ///< Lazy-protocol acquire work; Payload = cycles.
  SyncRelease = 12,    ///< Lazy-protocol release work; Payload = cycles.
  LogPublish = 13,     ///< racoh release published; Payload = record count.
  LogBackpressure = 14, ///< racoh publish found the node queue full.
  LogInvalidation = 15, ///< Resident line shot down by a consumed record;
                        ///< Payload = writing core.
  PreInvalidateAvoided = 16, ///< Lines an acquire kept; Payload = count.
  FaultEviction = 17,  ///< Fault-injected private eviction.
  ForcedReconcile = 18, ///< Fault-injected mid-region reconcile.
  Steal = 19,          ///< Successful steal; Payload = victim core.
  PrematureMiss = 20,  ///< Demand miss re-fetching a block the same core
                       ///< lost to a capacity eviction (replacement-policy
                       ///< attribution); Payload = miss latency, Arg =
                       ///< AccessType. Emitted alongside the DemandMiss.
};

/// Printable name of \p Kind ("demand_miss", ...); "unknown" for values
/// this build does not know (a newer log read by an older tool).
const char *evKindName(EvKind Kind);

/// One decoded event. The packed on-disk form is 32 little-endian bytes:
/// u64 Seq, u64 Cycle, u64 Addr, u32 Payload, u16 Core, u8 Kind, u8 Arg.
struct EvRecord {
  std::uint64_t Seq = 0;    ///< Global emission order within the run.
  Cycles Cycle = 0;         ///< Acting core's simulated clock.
  Addr Address = 0;         ///< Block or region address (0 when unused).
  std::uint32_t Payload = 0; ///< Kind-specific (latency, count, id, ...).
  std::uint16_t Core = 0;   ///< Acting core, or EventLog::DirectorySource.
  EvKind Kind = EvKind::DemandMiss;
  std::uint8_t Arg = 0;     ///< Kind-specific small argument.
};

/// Streaming bounded-memory writer. Lifecycle: configure() names the
/// output once (harness-side); each simulated run calls beginRun() before
/// replay and finish() after, producing "<base>.<protocol>.evlog". emit()
/// between the two appends to the acting core's ring, spilling full rings
/// to per-core shard files; finish() merges the shards (plus the resident
/// ring tails) in sequence order and deletes them.
class EventLog {
public:
  /// Records emitted by the directory/controller itself rather than an
  /// acting core (region bookkeeping, forced reconciles).
  static constexpr std::uint16_t DirectorySource = 0xffff;

  /// Default per-core ring capacity in records (32 KiB per core).
  static constexpr std::size_t DefaultRingCapacity = 1024;

  ~EventLog();

  /// Names the output. The final file of a run is
  /// "<Base>.<protocol-id>.evlog"; shards materialize next to it during
  /// the run. \p RingCapacity bounds the per-core buffered records (the
  /// writer's working memory is RingCapacity x cores x 32 bytes plus one
  /// record per shard during the merge).
  void configure(std::string Base,
                 std::size_t RingCapacity = DefaultRingCapacity);

  /// Free-form label recorded in the header (benchmark name, fixture id).
  void setRunLabel(std::string Label);

  /// True once configure() gave the log a destination.
  bool enabled() const { return !Base.empty(); }

  /// Arms the log for one simulated run: resets sequence numbers and
  /// rings, snapshots the allocation-site table from \p Map (may be null),
  /// and derives the run's file name from \p Config's protocol. A log
  /// that was never configured ignores this (and emit()/finish()).
  void beginRun(const MachineConfig &Config, const MemoryMap *Map);

  /// Appends one event. Constant-time into the acting core's ring except
  /// when the ring is full, which flushes it to the shard file. Never
  /// perturbs the simulation: no simulated state is read or written.
  void emit(Cycles Now, EvKind Kind, std::uint16_t Core, Addr Address,
            std::uint32_t Payload = 0, std::uint8_t Arg = 0);

  /// Flushes, merges, writes the final file, and removes the shards.
  /// Returns false (with error() set) on I/O failure. Idempotent within a
  /// run; beginRun() re-arms.
  bool finish();

  /// Path of the last file finish() wrote (empty before the first run).
  const std::string &lastPath() const { return LastPath; }
  const std::string &error() const { return Error; }

  // --- Introspection for the bounded-memory tests --------------------------
  std::uint64_t recordsEmitted() const { return Seq; }
  /// High-water mark of records buffered in rings at any instant.
  std::size_t peakBufferedRecords() const { return PeakBuffered; }
  /// Ring-full flushes to shard files across the run.
  std::uint64_t spillFlushes() const { return Spills; }

private:
  struct Ring {
    std::vector<EvRecord> Records;
    std::FILE *Shard = nullptr;
    std::string ShardPath;
  };

  bool spill(Ring &R);
  void closeShards(bool Remove);

  std::string Base;
  std::string Label;
  std::size_t RingCapacity = DefaultRingCapacity;

  bool Armed = false;
  std::string RunPath;     ///< "<Base>.<protocol>.evlog" for this run.
  std::string ProtocolId;
  unsigned CoreCount = 0;
  unsigned BlockSize = 0;
  std::vector<std::string> Sites;
  struct SpanRec {
    Addr Start;
    Addr End;
    std::uint32_t Site;
  };
  std::vector<SpanRec> Spans;

  std::uint64_t Seq = 0;
  std::vector<Ring> Rings; ///< One per core plus the directory source.
  std::size_t Buffered = 0;
  std::size_t PeakBuffered = 0;
  std::uint64_t Spills = 0;

  std::string LastPath;
  std::string Error;
};

/// Parsed "warden-evlog-v1" header.
struct EvlogHeader {
  std::uint32_t Version = 0;
  std::uint32_t RecordSize = 0;
  std::uint32_t CoreCount = 0;
  std::uint32_t BlockSize = 0;
  std::string ProtocolId;
  std::string Label;
  std::uint64_t RecordCount = 0;
  std::vector<std::string> Sites;
  struct SpanRec {
    Addr Start = 0;
    Addr End = 0;
    std::uint32_t Site = 0;
  };
  std::vector<SpanRec> Spans; ///< Sorted by Start (writer emits them so).

  /// Allocation site owning \p Address, or InvalidSite (see TaskGraph.h).
  std::uint32_t siteOf(Addr Address) const;
  /// Name of \p Site ("<unmapped>" for InvalidSite / out of range).
  const std::string &siteName(std::uint32_t Site) const;
};

/// Streaming reader: open() parses the header, next() yields records in
/// sequence order until the count is exhausted. One record of state — the
/// reader never materializes the log.
class EvlogReader {
public:
  ~EvlogReader();

  bool open(const std::string &Path);
  const EvlogHeader &header() const { return Header; }
  /// Reads the next record into \p R; false at end (or error() on damage).
  bool next(EvRecord &R);
  std::uint64_t recordsRead() const { return Read; }
  const std::string &error() const { return Error; }

private:
  std::FILE *File = nullptr;
  EvlogHeader Header;
  std::uint64_t Read = 0;
  std::string Error;
};

} // namespace warden

#endif // WARDEN_OBS_EVENTLOG_H
