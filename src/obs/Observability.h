//===- obs/Observability.h - Attachable observability bundle --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bundle of observability sinks a simulation can carry: a metric
/// registry, a timeline sampler, and a Chrome-trace recorder, any subset of
/// which may be attached. RunOptions::Obs points at one of these; the
/// replay scheduler and the coherence controller feed whichever sinks are
/// present. All sinks are passive recorders, so the zero-perturbation
/// contract of the ProtocolAuditor holds here too: detached costs a null
/// check per hook, attached runs are cycle-identical (tests assert this).
///
/// `Now` is the simulated timestamp of the acting core, maintained by the
/// replay scheduler as it advances cores; the coherence controller — which
/// has no clock of its own — reads it to timestamp instant events and WARD
/// region lifetimes.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_OBSERVABILITY_H
#define WARDEN_OBS_OBSERVABILITY_H

#include "src/support/Types.h"

namespace warden {

class MetricRegistry;
class TimelineSampler;
class ChromeTraceExporter;
class SharingProfiler;
class CpiStack;
class EventLog;

/// Observability sinks for one simulation. Not owned by the simulator; the
/// caller keeps the instruments and reads them after the run.
struct Observability {
  MetricRegistry *Metrics = nullptr;
  TimelineSampler *Sampler = nullptr;
  ChromeTraceExporter *Trace = nullptr;
  /// Per-line sharing/attribution profiler (second-generation layer).
  SharingProfiler *Profiler = nullptr;
  /// Per-core cycle accounting (CPI stall stacks).
  CpiStack *Cpi = nullptr;
  /// Streaming binary event log (forensic layer; see obs/EventLog.h).
  EventLog *Log = nullptr;

  /// Simulated time of the core currently being advanced (replayer-owned).
  Cycles Now = 0;
};

} // namespace warden

#endif // WARDEN_OBS_OBSERVABILITY_H
