//===- obs/SharingProfiler.cpp - Per-line coherence attribution -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/SharingProfiler.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/Observability.h"
#include "src/support/Json.h"
#include "src/trace/TaskGraph.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

using namespace warden;

const char *warden::sharingClassName(SharingClass C) {
  switch (C) {
  case SharingClass::Private:
    return "private";
  case SharingClass::TrueSharing:
    return "true-sharing";
  case SharingClass::FalseSharing:
    return "false-sharing";
  case SharingClass::Migratory:
    return "migratory";
  case SharingClass::WardElided:
    return "ward-elided";
  case SharingClass::ReadShared:
    return "read-shared";
  }
  return "?";
}

void SharingProfiler::beginRun(const MemoryMap *RunMap,
                               Observability *RunObs) {
  Table.clear();
  Map = RunMap;
  Obs = RunObs;
  ClaimedTracks = 0;
  Dropped = 0;
  AdmitCounter = 0;
}

SharingProfiler::LineRecord *SharingProfiler::lookup(Addr Block) {
  auto It = Table.find(Block);
  if (It != Table.end())
    return &It->second;
  if (Table.size() < Capacity)
    return &Table[Block];

  // Full: decayed deterministic admission. Every 2^AdmitShift-th candidate
  // evicts the current minimum-traffic entry; the rest are counted dropped.
  ++AdmitCounter;
  if ((AdmitCounter & ((std::uint64_t(1) << AdmitShift) - 1)) != 0) {
    ++Dropped;
    return nullptr;
  }
  // Victim choice must not depend on the hash table's layout: break
  // traffic ties on the block address so any history of insertions and
  // rehashes evicts the same line.
  auto Min = Table.begin();
  for (auto Cand = Table.begin(); Cand != Table.end(); ++Cand) {
    std::uint64_t CandTraffic = Cand->second.traffic();
    std::uint64_t MinTraffic = Min->second.traffic();
    if (CandTraffic < MinTraffic ||
        (CandTraffic == MinTraffic && Cand->first < Min->first))
      Min = Cand;
  }
  Table.erase(Min);
  return &Table[Block];
}

void SharingProfiler::noteContention(Addr Block, LineRecord &R) {
  if (!Obs || !Obs->Trace)
    return;
  if (R.CounterName.empty()) {
    if (R.Invalidations + R.Downgrades < ClaimThreshold ||
        ClaimedTracks >= MaxCounterTracks)
      return;
    ++ClaimedTracks;
    char Name[128];
    std::string_view Site =
        Map ? Map->siteName(Map->siteOf(Block)) : std::string_view("?");
    std::snprintf(Name, sizeof(Name), "inv+down line 0x%llx (%.*s)",
                  static_cast<unsigned long long>(Block),
                  static_cast<int>(Site.size()), Site.data());
    R.CounterName = Name;
  }
  if (R.CounterSamples >= MaxCounterSamples)
    return;
  ++R.CounterSamples;
  Obs->Trace->counter(R.CounterName, Obs->Now,
                      static_cast<double>(R.Invalidations + R.Downgrades));
}

void SharingProfiler::finishCounters() const {
  if (!Obs || !Obs->Trace)
    return;
  // Emit in block-address order, not hash order, so the trace stream is
  // identical across container layouts and library versions.
  std::vector<const LineRecord *> Claimed;
  for (const auto &[Block, R] : Table) {
    (void)Block;
    if (!R.CounterName.empty())
      Claimed.push_back(&R);
  }
  std::sort(Claimed.begin(), Claimed.end(),
            [](const LineRecord *A, const LineRecord *B) {
              return A->CounterName < B->CounterName;
            });
  for (const LineRecord *R : Claimed)
    Obs->Trace->counter(R->CounterName, Obs->Now,
                        static_cast<double>(R->Invalidations + R->Downgrades));
}

void SharingProfiler::onRead(Addr Block, CoreId Core) {
  if (LineRecord *R = lookup(Block))
    R->Readers.set(Core);
}

void SharingProfiler::onWrite(Addr Block, CoreId Core, unsigned Offset,
                              unsigned Size) {
  LineRecord *R = lookup(Block);
  if (!R)
    return;
  R->Writers.set(Core);
  if (R->LastWriter != Core) {
    if (R->LastWriter != InvalidCore) {
      ++R->WriterHandoffs;
      if (R->PrevWriter == Core)
        ++R->PingPongs; // A, B, A: the classic ping-pong signature.
    }
    R->PrevWriter = R->LastWriter;
    R->LastWriter = Core;
  }
  SectorMask *Mine = nullptr;
  for (auto &[Owner, Mask] : R->Footprints) {
    if (Owner == Core) {
      Mine = &Mask;
      continue;
    }
    if (!R->OverlapWritten && Mask.anyWritten(Offset, Size))
      R->OverlapWritten = true;
  }
  if (!Mine) {
    R->Footprints.emplace_back(Core, SectorMask());
    Mine = &R->Footprints.back().second;
  }
  Mine->markWritten(Offset, Size);
}

void SharingProfiler::onInvalidation(Addr Block, CoreId Victim) {
  LineRecord *R = lookup(Block);
  if (!R)
    return;
  (void)Victim;
  ++R->Invalidations;
  noteContention(Block, *R);
}

void SharingProfiler::onDowngrade(Addr Block, CoreId Owner) {
  LineRecord *R = lookup(Block);
  if (!R)
    return;
  (void)Owner;
  ++R->Downgrades;
  noteContention(Block, *R);
}

void SharingProfiler::onReconcile(Addr Block, unsigned Holders) {
  if (LineRecord *R = lookup(Block))
    R->Reconciles += Holders ? Holders : 1;
}

void SharingProfiler::onWardGrant(Addr Block, CoreId Core) {
  if (LineRecord *R = lookup(Block)) {
    (void)Core;
    ++R->WardGrants;
  }
}

void SharingProfiler::onDemandMiss(Addr Block, CoreId Core, Cycles Latency,
                                   bool Remote) {
  LineRecord *R = lookup(Block);
  if (!R)
    return;
  (void)Core;
  ++R->DemandMisses;
  R->DemandMissCycles += Latency;
  if (Remote)
    ++R->RemoteHops;
}

void SharingProfiler::onPrematureMiss(Addr Block, CoreId Core) {
  if (LineRecord *R = lookup(Block)) {
    (void)Core;
    ++R->PrematureMisses;
  }
}

SharingClass SharingProfiler::classify(const LineRecord &R) const {
  CoreMask Touched = R.Readers;
  R.Writers.forEach([&](CoreId Core) { Touched.set(Core); });
  if (Touched.count() <= 1)
    return SharingClass::Private;
  if (R.WardGrants > 0 && R.Invalidations + R.Downgrades == 0)
    return SharingClass::WardElided;
  unsigned Writers = R.Writers.count();
  if (Writers >= 2) {
    if (!R.OverlapWritten)
      return SharingClass::FalseSharing;
    // Overlapping footprints: readers downgrading the writer mean genuine
    // producer/consumer sharing; pure writer handoffs are migratory data.
    return R.Downgrades == 0 ? SharingClass::Migratory
                             : SharingClass::TrueSharing;
  }
  return Writers == 0 ? SharingClass::ReadShared : SharingClass::TrueSharing;
}

void SharingProfiler::fillProfile(Addr Block, const LineRecord &R,
                                  LineProfile &P) const {
  P.Block = Block;
  P.Site = Map ? Map->siteOf(Block) : InvalidSite;
  P.SiteName = Map ? std::string(Map->siteName(P.Site)) : "<unmapped>";
  P.Class = classify(R);
  P.Invalidations = R.Invalidations;
  P.Downgrades = R.Downgrades;
  P.Reconciles = R.Reconciles;
  P.WardGrants = R.WardGrants;
  P.RemoteHops = R.RemoteHops;
  P.DemandMisses = R.DemandMisses;
  P.DemandMissCycles = R.DemandMissCycles;
  P.PrematureMisses = R.PrematureMisses;
  P.WriterHandoffs = R.WriterHandoffs;
  P.PingPongs = R.PingPongs;
  P.Readers = R.Readers.count();
  P.Writers = R.Writers.count();
}

ProfileReport SharingProfiler::report(std::size_t TopN) const {
  ProfileReport Rep;
  Rep.Enabled = true;
  Rep.TrackedLines = Table.size();
  Rep.DroppedEvents = Dropped;

  std::vector<LineProfile> All;
  All.reserve(Table.size());
  std::map<std::uint32_t, SiteProfile> Sites;
  for (const auto &[Block, R] : Table) {
    LineProfile P;
    fillProfile(Block, R, P);
    Rep.TotalInvalidations += P.Invalidations;
    Rep.TotalDowngrades += P.Downgrades;
    Rep.TotalPrematureMisses += P.PrematureMisses;

    SiteProfile &S = Sites[P.Site];
    S.Site = P.Site;
    S.SiteName = P.SiteName;
    ++S.Lines;
    S.Invalidations += P.Invalidations;
    S.Downgrades += P.Downgrades;
    S.Reconciles += P.Reconciles;
    S.WardGrants += P.WardGrants;
    S.DemandMisses += P.DemandMisses;
    S.DemandMissCycles += P.DemandMissCycles;
    S.PrematureMisses += P.PrematureMisses;

    All.push_back(std::move(P));
  }

  std::sort(All.begin(), All.end(),
            [](const LineProfile &A, const LineProfile &B) {
              if (A.traffic() != B.traffic())
                return A.traffic() > B.traffic();
              return A.Block < B.Block;
            });
  if (All.size() > TopN)
    All.resize(TopN);
  Rep.Lines = std::move(All);

  for (auto &[Site, S] : Sites) {
    (void)Site;
    if (S.Invalidations + S.Downgrades + S.Reconciles + S.WardGrants +
            S.DemandMisses ==
        0)
      continue;
    Rep.Sites.push_back(std::move(S));
  }
  std::sort(Rep.Sites.begin(), Rep.Sites.end(),
            [](const SiteProfile &A, const SiteProfile &B) {
              std::uint64_t TA = A.Invalidations + A.Downgrades + A.Reconciles;
              std::uint64_t TB = B.Invalidations + B.Downgrades + B.Reconciles;
              if (TA != TB)
                return TA > TB;
              return A.SiteName < B.SiteName;
            });
  return Rep;
}

void ProfileReport::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.member("schema", "warden-prof-v1");
  W.member("enabled", Enabled);
  W.member("tracked_lines", TrackedLines);
  W.member("dropped_events", DroppedEvents);
  W.member("total_invalidations", TotalInvalidations);
  W.member("total_downgrades", TotalDowngrades);
  W.member("total_premature_misses", TotalPrematureMisses);
  W.key("lines").beginArray();
  for (const LineProfile &P : Lines) {
    W.beginObject();
    char Hex[32];
    std::snprintf(Hex, sizeof(Hex), "0x%llx",
                  static_cast<unsigned long long>(P.Block));
    W.member("block", Hex);
    W.member("site", P.SiteName);
    W.member("class", sharingClassName(P.Class));
    W.member("invalidations", P.Invalidations);
    W.member("downgrades", P.Downgrades);
    W.member("reconciles", P.Reconciles);
    W.member("ward_grants", P.WardGrants);
    W.member("remote_hops", P.RemoteHops);
    W.member("demand_misses", P.DemandMisses);
    W.member("demand_miss_cycles", P.DemandMissCycles);
    W.member("premature_misses", P.PrematureMisses);
    W.member("writer_handoffs", P.WriterHandoffs);
    W.member("ping_pongs", P.PingPongs);
    W.member("readers", P.Readers);
    W.member("writers", P.Writers);
    W.endObject();
  }
  W.endArray();
  W.key("sites").beginArray();
  for (const SiteProfile &S : Sites) {
    W.beginObject();
    W.member("site", S.SiteName);
    W.member("lines", S.Lines);
    W.member("invalidations", S.Invalidations);
    W.member("downgrades", S.Downgrades);
    W.member("reconciles", S.Reconciles);
    W.member("ward_grants", S.WardGrants);
    W.member("demand_misses", S.DemandMisses);
    W.member("demand_miss_cycles", S.DemandMissCycles);
    W.member("premature_misses", S.PrematureMisses);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}
