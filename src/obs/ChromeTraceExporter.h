//===- obs/ChromeTraceExporter.h - Perfetto trace-event export -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records a replayed execution as Chrome Trace Event JSON, loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. Each simulated core is
/// one track carrying complete ("ph":"X") spans for the strands it
/// executed; directory-side happenings — WARD reconciles, region-table
/// overflows, injected faults — land as instant ("ph":"i") events on a
/// dedicated "directory" track. Timestamps are simulated cycles; render()
/// sorts events so the ts sequence is monotonic, which some consumers
/// require.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_CHROMETRACEEXPORTER_H
#define WARDEN_OBS_CHROMETRACEEXPORTER_H

#include "src/support/Types.h"

#include <algorithm>
#include <string>
#include <vector>

namespace warden {

/// Collects spans and instants during a run; render() emits the document.
class ChromeTraceExporter {
public:
  /// Declares the simulated core count, so every core gets a named track
  /// (and the directory track lands after the last core).
  void setCoreCount(unsigned Cores) { CoreCount = std::max(CoreCount, Cores); }
  unsigned coreCount() const { return CoreCount; }

  /// Track id used for directory-side instant events.
  unsigned directoryTid() const { return CoreCount; }

  /// Core \p Core executed strand \p Strand over [\p Start, \p End].
  void taskSpan(CoreId Core, StrandId Strand, Cycles Start, Cycles End);

  /// A point event named \p Name on track \p Tid at time \p At.
  void instant(std::string Name, unsigned Tid, Cycles At);

  /// A counter sample ("ph":"C"): Perfetto renders one counter track per
  /// \p Name charting \p Value over time. Used by the sharing profiler for
  /// the most contended cache lines.
  void counter(std::string Name, Cycles At, double Value);

  std::size_t spanCount() const { return Spans.size(); }
  std::size_t instantCount() const { return Instants.size(); }
  std::size_t counterCount() const { return Counters.size(); }

  /// Renders the whole trace as a Trace Event JSON document (an object with
  /// a "traceEvents" array, timestamps sorted ascending).
  std::string render() const;

  /// Writes render() to \p Path; returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  struct Span {
    CoreId Core;
    StrandId Strand;
    Cycles Start;
    Cycles End;
  };
  struct Instant {
    std::string Name;
    unsigned Tid;
    Cycles At;
  };
  struct CounterSample {
    std::string Name;
    Cycles At;
    double Value;
  };

  unsigned CoreCount = 0;
  std::vector<Span> Spans;
  std::vector<Instant> Instants;
  std::vector<CounterSample> Counters;
};

} // namespace warden

#endif // WARDEN_OBS_CHROMETRACEEXPORTER_H
