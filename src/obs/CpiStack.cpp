//===- obs/CpiStack.cpp - Per-core cycle accounting -----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/CpiStack.h"

#include "src/support/Json.h"

using namespace warden;

const char *warden::cpiCategoryName(CpiCat C) {
  switch (C) {
  case CpiCat::Compute:
    return "compute";
  case CpiCat::L1Hit:
    return "l1_hit";
  case CpiCat::L2Hit:
    return "l2_hit";
  case CpiCat::DirectoryWait:
    return "directory_wait";
  case CpiCat::RemoteHop:
    return "remote_hop";
  case CpiCat::Dram:
    return "dram";
  case CpiCat::InvalidationService:
    return "invalidation_service";
  case CpiCat::DowngradeService:
    return "downgrade_service";
  case CpiCat::Reconcile:
    return "reconcile";
  case CpiCat::StoreBufferStall:
    return "store_buffer_stall";
  case CpiCat::StealWait:
    return "steal_wait";
  case CpiCat::StoreBuffered:
    return "store_buffered";
  case CpiCat::Count:
    break;
  }
  return "?";
}

void CpiStack::beginRun(unsigned CoreCount) {
  Scratch = {};
  PerCore.assign(CoreCount, {});
  CoreTime.assign(CoreCount, 0);
}

void CpiStack::commitCritical(CoreId Core) {
  for (unsigned C = 0; C < NumCats; ++C)
    PerCore[Core][C] += Scratch[C];
  Scratch = {};
}

void CpiStack::commitBuffered(CoreId Core) {
  Cycles Sum = 0;
  for (Cycles V : Scratch)
    Sum += V;
  PerCore[Core][static_cast<unsigned>(CpiCat::StoreBuffered)] += Sum;
  Scratch = {};
}

void CpiStack::discard() { Scratch = {}; }

CpiReport CpiStack::report() const {
  CpiReport Rep;
  Rep.Enabled = true;
  Rep.Cores = static_cast<unsigned>(PerCore.size());
  Rep.PerCore = PerCore;
  Rep.CoreTime = CoreTime;
  return Rep;
}

Cycles CpiReport::total(CpiCat C) const {
  Cycles Sum = 0;
  for (const auto &Core : PerCore)
    Sum += Core[static_cast<unsigned>(C)];
  return Sum;
}

Cycles CpiReport::accounted(unsigned Core) const {
  Cycles Sum = 0;
  for (unsigned C = 0; C < static_cast<unsigned>(CpiCat::Count); ++C)
    if (C != static_cast<unsigned>(CpiCat::StoreBuffered))
      Sum += PerCore[Core][C];
  return Sum;
}

void CpiReport::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.member("enabled", Enabled);
  W.member("cores", Cores);
  W.key("total_cycles").beginObject();
  for (unsigned C = 0; C < static_cast<unsigned>(CpiCat::Count); ++C)
    W.member(cpiCategoryName(static_cast<CpiCat>(C)),
             total(static_cast<CpiCat>(C)));
  Cycles Other = 0;
  for (unsigned Core = 0; Core < Cores; ++Core) {
    Cycles Acc = accounted(Core);
    if (CoreTime[Core] > Acc)
      Other += CoreTime[Core] - Acc;
  }
  W.member("other", Other);
  W.endObject();
  W.key("core_time").beginArray();
  for (Cycles T : CoreTime)
    W.value(T);
  W.endArray();
  W.endObject();
}
