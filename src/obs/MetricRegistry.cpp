//===- obs/MetricRegistry.cpp - Named counters/gauges/histograms ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/MetricRegistry.h"

#include "src/support/Json.h"

#include <algorithm>
#include <cmath>

using namespace warden;

std::uint64_t Histogram::percentile(double P) const {
  if (N == 0)
    return 0;
  double Clamped = std::clamp(P, 0.0, 100.0);
  auto Rank = static_cast<std::uint64_t>(
      std::ceil(Clamped / 100.0 * static_cast<double>(N)));
  Rank = std::clamp<std::uint64_t>(Rank, 1, N);
  std::uint64_t Cumulative = 0;
  for (unsigned I = 0; I < BucketCount; ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Rank)
      return std::min(bucketHigh(I), MaxSeen);
  }
  return MaxSeen;
}

MetricsReport MetricRegistry::report() const {
  MetricsReport R;
  R.Enabled = true;
  for (const auto &[Name, C] : Counters)
    R.Counters.emplace_back(Name, C.value());
  for (const auto &[Name, G] : Gauges)
    R.Gauges.emplace_back(Name, G.value());
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot S;
    S.Name = Name;
    S.Count = H.count();
    S.Sum = H.sum();
    S.Min = H.min();
    S.Max = H.max();
    S.Mean = H.mean();
    S.P50 = H.percentile(50);
    S.P90 = H.percentile(90);
    S.P99 = H.percentile(99);
    for (unsigned I = 0; I < Histogram::BucketCount; ++I)
      if (H.bucket(I) != 0)
        S.Buckets.emplace_back(Histogram::bucketLow(I), H.bucket(I));
    R.Histograms.push_back(std::move(S));
  }
  return R;
}

void MetricsReport::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.member("enabled", Enabled);
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Counters)
    W.member(Name, Value);
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, Value] : Gauges)
    W.member(Name, Value);
  W.endObject();
  W.key("histograms").beginObject();
  for (const HistogramSnapshot &H : Histograms) {
    W.key(H.Name).beginObject();
    W.member("count", H.Count);
    W.member("sum", H.Sum);
    W.member("min", H.Min);
    W.member("max", H.Max);
    W.member("mean", H.Mean);
    W.member("p50", H.P50);
    W.member("p90", H.P90);
    W.member("p99", H.P99);
    W.key("buckets").beginArray();
    for (const auto &[Low, Count] : H.Buckets)
      W.beginObject().member("ge", Low).member("count", Count).endObject();
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
}
