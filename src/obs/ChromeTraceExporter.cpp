//===- obs/ChromeTraceExporter.cpp - Perfetto trace-event export ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/ChromeTraceExporter.h"

#include "src/support/Json.h"

#include <algorithm>
#include <cstdio>

using namespace warden;

void ChromeTraceExporter::taskSpan(CoreId Core, StrandId Strand, Cycles Start,
                                   Cycles End) {
  setCoreCount(Core + 1);
  Spans.push_back({Core, Strand, Start, std::max(Start, End)});
}

void ChromeTraceExporter::instant(std::string Name, unsigned Tid, Cycles At) {
  Instants.push_back({std::move(Name), Tid, At});
}

void ChromeTraceExporter::counter(std::string Name, Cycles At, double Value) {
  Counters.push_back({std::move(Name), At, Value});
}

std::string ChromeTraceExporter::render() const {
  // Merge spans, instants, and counter samples into one ts-sorted event
  // list. Stable sort keeps same-timestamp events in recording order,
  // which is already causal.
  enum class Kind { Span, Instant, Counter };
  struct Ref {
    Cycles Ts;
    Kind What;
    std::size_t Index;
  };
  std::vector<Ref> Order;
  Order.reserve(Spans.size() + Instants.size() + Counters.size());
  for (std::size_t I = 0; I < Spans.size(); ++I)
    Order.push_back({Spans[I].Start, Kind::Span, I});
  for (std::size_t I = 0; I < Instants.size(); ++I)
    Order.push_back({Instants[I].At, Kind::Instant, I});
  for (std::size_t I = 0; I < Counters.size(); ++I)
    Order.push_back({Counters[I].At, Kind::Counter, I});
  std::stable_sort(Order.begin(), Order.end(),
                   [](const Ref &A, const Ref &B) { return A.Ts < B.Ts; });

  JsonWriter W;
  W.beginObject();
  W.member("displayTimeUnit", "ns");
  W.key("traceEvents").beginArray();

  // Track-naming metadata first (ts 0, so sorting is unaffected).
  auto Meta = [&](unsigned Tid, const std::string &Label) {
    W.beginObject();
    W.member("name", "thread_name");
    W.member("ph", "M");
    W.member("pid", 0u);
    W.member("tid", Tid);
    W.member("ts", std::uint64_t(0));
    W.key("args").beginObject().member("name", Label).endObject();
    W.endObject();
  };
  for (unsigned Core = 0; Core < CoreCount; ++Core)
    Meta(Core, "core " + std::to_string(Core));
  if (!Instants.empty())
    Meta(directoryTid(), "directory");

  for (const Ref &R : Order) {
    W.beginObject();
    switch (R.What) {
    case Kind::Span: {
      const Span &S = Spans[R.Index];
      W.member("name", "strand " + std::to_string(S.Strand));
      W.member("cat", "task");
      W.member("ph", "X");
      W.member("ts", S.Start);
      W.member("dur", S.End - S.Start);
      W.member("pid", 0u);
      W.member("tid", S.Core);
      W.key("args").beginObject().member("strand", S.Strand).endObject();
      break;
    }
    case Kind::Instant: {
      const Instant &I = Instants[R.Index];
      W.member("name", I.Name);
      W.member("cat", "coherence");
      W.member("ph", "i");
      W.member("s", "t"); // Thread-scoped instant.
      W.member("ts", I.At);
      W.member("pid", 0u);
      W.member("tid", I.Tid);
      break;
    }
    case Kind::Counter: {
      const CounterSample &C = Counters[R.Index];
      W.member("name", C.Name);
      W.member("cat", "contention");
      W.member("ph", "C");
      W.member("ts", C.At);
      W.member("pid", 0u);
      W.member("tid", directoryTid());
      W.key("args").beginObject().member("value", C.Value).endObject();
      break;
    }
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

bool ChromeTraceExporter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Doc = render();
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}
