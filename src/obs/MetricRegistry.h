//===- obs/MetricRegistry.h - Named counters/gauges/histograms -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metric store of the observability subsystem: named counters, gauges,
/// and log2-bucketed histograms that simulator components update through
/// cached instrument pointers. The registry follows the ProtocolAuditor's
/// zero-perturbation contract — instruments only record what the simulator
/// already computed, a detached registry costs one null check per hook, and
/// an attached run is cycle-identical to a detached one (asserted by
/// tests/ObsTest.cpp).
///
/// Instrument references returned by the registry are stable for the
/// registry's lifetime (node-based storage), so components resolve their
/// instruments once at attach time and update through raw pointers on the
/// hot path.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_METRICREGISTRY_H
#define WARDEN_OBS_METRICREGISTRY_H

#include "src/support/Types.h"

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace warden {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
public:
  void add(std::uint64_t Delta = 1) { Value += Delta; }
  std::uint64_t value() const { return Value; }

private:
  std::uint64_t Value = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
  void set(double V) { Value = V; }
  double value() const { return Value; }

private:
  double Value = 0;
};

/// Log2-bucketed histogram of unsigned samples. Bucket 0 holds exactly the
/// value 0; bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. 65 buckets cover
/// the full std::uint64_t range, so record() never saturates or drops.
class Histogram {
public:
  static constexpr unsigned BucketCount = 65;

  /// Bucket index of \p Value (== bit width of the value).
  static unsigned bucketFor(std::uint64_t Value) {
    return static_cast<unsigned>(std::bit_width(Value));
  }

  /// Smallest value bucket \p I holds.
  static std::uint64_t bucketLow(unsigned I) {
    return I == 0 ? 0 : std::uint64_t(1) << (I - 1);
  }

  /// Largest value bucket \p I holds (inclusive).
  static std::uint64_t bucketHigh(unsigned I) {
    if (I == 0)
      return 0;
    if (I >= 64)
      return ~std::uint64_t(0);
    return (std::uint64_t(1) << I) - 1;
  }

  void record(std::uint64_t Value) {
    ++Buckets[bucketFor(Value)];
    ++N;
    Total += Value;
    if (N == 1 || Value < MinSeen)
      MinSeen = Value;
    if (Value > MaxSeen)
      MaxSeen = Value;
  }

  std::uint64_t count() const { return N; }
  std::uint64_t sum() const { return Total; }
  std::uint64_t min() const { return MinSeen; }
  std::uint64_t max() const { return MaxSeen; }
  double mean() const {
    return N == 0 ? 0.0
                  : static_cast<double>(Total) / static_cast<double>(N);
  }
  std::uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// Upper-bound estimate of the \p P-th percentile (0..100): the inclusive
  /// upper edge of the bucket holding the rank-ceil(P/100*N) sample,
  /// clamped to the observed maximum. Returns 0 on an empty histogram.
  std::uint64_t percentile(double P) const;

private:
  std::uint64_t Buckets[BucketCount] = {};
  std::uint64_t N = 0;
  std::uint64_t Total = 0;
  std::uint64_t MinSeen = 0;
  std::uint64_t MaxSeen = 0;
};

/// Point-in-time summary of one histogram, carried into RunResult.
struct HistogramSnapshot {
  std::string Name;
  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = 0;
  std::uint64_t Max = 0;
  double Mean = 0;
  std::uint64_t P50 = 0;
  std::uint64_t P90 = 0;
  std::uint64_t P99 = 0;
  /// (inclusive bucket lower bound, count) for every non-empty bucket.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> Buckets;
};

/// Point-in-time snapshot of a whole registry; the `Metrics` member of
/// RunResult. Cheap value semantics so median selection can copy it.
struct MetricsReport {
  bool Enabled = false;
  std::vector<std::pair<std::string, std::uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<HistogramSnapshot> Histograms;

  /// Emits the report as one JSON object onto \p W.
  void writeJson(JsonWriter &W) const;
};

/// Registry of named instruments. Lookup is by full dotted name (e.g.
/// "coherence.load_latency_cycles"); the first lookup creates the
/// instrument, later lookups return the same stable reference.
class MetricRegistry {
public:
  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }

  /// Snapshots every instrument, sorted by name.
  MetricsReport report() const;

private:
  // std::map: node-based, so instrument addresses are stable and report
  // iteration is deterministically name-ordered.
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace warden

#endif // WARDEN_OBS_METRICREGISTRY_H
