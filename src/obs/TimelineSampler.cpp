//===- obs/TimelineSampler.cpp - Periodic time-series snapshots -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/TimelineSampler.h"

#include "src/support/Json.h"

#include <algorithm>

using namespace warden;

void TimelineSampler::capture(Cycles At, const TimelineInputs &In) {
  Cycles Window = At - LastCycle;
  TimelineSample S;
  S.Cycle = At;
  S.RegionOccupancy = In.RegionOccupancy;
  if (Window > 0) {
    auto Span = static_cast<double>(Window);
    S.Ipc = static_cast<double>(In.Instructions - LastInstructions) / Span;
    S.InvPerKCycle =
        1000.0 * static_cast<double>(In.Invalidations - LastInvalidations) /
        Span;
    S.DownPerKCycle =
        1000.0 * static_cast<double>(In.Downgrades - LastDowngrades) / Span;
    if (In.BusyCycles && !In.BusyCycles->empty()) {
      std::uint64_t BusySum = 0;
      for (Cycles Busy : *In.BusyCycles)
        BusySum += Busy;
      S.BusyFraction =
          static_cast<double>(BusySum - LastBusySum) /
          (Span * static_cast<double>(In.BusyCycles->size()));
      // Busy deltas are attributed at strand-step granularity, so a window
      // boundary mid-step can momentarily exceed the wall window; clamp.
      S.BusyFraction = std::clamp(S.BusyFraction, 0.0, 1.0);
      LastBusySum = BusySum;
    }
  }
  Samples.push_back(S);
  LastCycle = At;
  LastInstructions = In.Instructions;
  LastInvalidations = In.Invalidations;
  LastDowngrades = In.Downgrades;
  NextSample = (At / Interval + 1) * Interval;
}

void TimelineSampler::writeJson(JsonWriter &W) const {
  W.beginArray();
  for (const TimelineSample &S : Samples) {
    W.beginObject();
    W.member("cycle", S.Cycle);
    W.member("ipc", S.Ipc);
    W.member("inv_per_kcycle", S.InvPerKCycle);
    W.member("down_per_kcycle", S.DownPerKCycle);
    W.member("region_occupancy", S.RegionOccupancy);
    W.member("busy_fraction", S.BusyFraction);
    W.endObject();
  }
  W.endArray();
}
