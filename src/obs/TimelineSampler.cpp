//===- obs/TimelineSampler.cpp - Periodic time-series snapshots -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/obs/TimelineSampler.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/support/Json.h"

#include <algorithm>

using namespace warden;

void TimelineSampler::capture(Cycles At, const TimelineInputs &In) {
  Cycles Window = At - LastCycle;
  TimelineSample S;
  S.Cycle = At;
  S.RegionOccupancy = In.RegionOccupancy;
  S.LogCoherence = In.LogCoherence;
  S.LogQueuePeak = In.LogQueuePeakOccupancy;
  if (Window > 0) {
    auto Span = static_cast<double>(Window);
    auto PerKCycle = [Span](std::uint64_t Now, std::uint64_t Last) {
      return 1000.0 * static_cast<double>(Now - Last) / Span;
    };
    S.Ipc = static_cast<double>(In.Instructions - LastInstructions) / Span;
    S.InvPerKCycle = PerKCycle(In.Invalidations, LastInvalidations);
    S.DownPerKCycle = PerKCycle(In.Downgrades, LastDowngrades);
    if (In.BusyCycles && !In.BusyCycles->empty()) {
      std::uint64_t BusySum = 0;
      for (Cycles Busy : *In.BusyCycles)
        BusySum += Busy;
      S.BusyFraction =
          static_cast<double>(BusySum - LastBusySum) /
          (Span * static_cast<double>(In.BusyCycles->size()));
      // Busy deltas are attributed at strand-step granularity, so a window
      // boundary mid-step can momentarily exceed the wall window; clamp.
      S.BusyFraction = std::clamp(S.BusyFraction, 0.0, 1.0);
      LastBusySum = BusySum;
    }
    if (In.LogCoherence) {
      S.LogPublishesPerKCycle = PerKCycle(In.LogPublishes, LastLogPublishes);
      S.LogRecordsPublishedPerKCycle =
          PerKCycle(In.LogRecordsPublished, LastLogRecordsPublished);
      S.LogRecordsConsumedPerKCycle =
          PerKCycle(In.LogRecordsConsumed, LastLogRecordsConsumed);
      S.LogBackpressurePerKCycle =
          PerKCycle(In.LogBackpressureStalls, LastLogBackpressure);
      S.LogInvPerKCycle = PerKCycle(In.LogInvalidations, LastLogInvalidations);
      S.PreInvAvoidedPerKCycle =
          PerKCycle(In.PreInvalidateAvoided, LastPreInvAvoided);
      S.CrossNodeHopsPerKCycle = PerKCycle(In.CrossNodeHops, LastCrossNodeHops);
    }
  }
  Samples.push_back(S);
  if (Trace) {
    Trace->counter("timeline.ipc", At, S.Ipc);
    Trace->counter("timeline.inv_per_kcycle", At, S.InvPerKCycle);
    Trace->counter("timeline.down_per_kcycle", At, S.DownPerKCycle);
    Trace->counter("timeline.region_occupancy", At, S.RegionOccupancy);
    Trace->counter("timeline.busy_fraction", At, S.BusyFraction);
    if (S.LogCoherence) {
      Trace->counter("racoh.log_publishes_per_kcycle", At,
                     S.LogPublishesPerKCycle);
      Trace->counter("racoh.log_records_published_per_kcycle", At,
                     S.LogRecordsPublishedPerKCycle);
      Trace->counter("racoh.log_records_consumed_per_kcycle", At,
                     S.LogRecordsConsumedPerKCycle);
      Trace->counter("racoh.log_backpressure_per_kcycle", At,
                     S.LogBackpressurePerKCycle);
      Trace->counter("racoh.log_inv_per_kcycle", At, S.LogInvPerKCycle);
      Trace->counter("racoh.pre_inv_avoided_per_kcycle", At,
                     S.PreInvAvoidedPerKCycle);
      Trace->counter("racoh.cross_node_hops_per_kcycle", At,
                     S.CrossNodeHopsPerKCycle);
      Trace->counter("racoh.log_queue_peak", At,
                     static_cast<double>(S.LogQueuePeak));
    }
  }
  LastCycle = At;
  LastInstructions = In.Instructions;
  LastInvalidations = In.Invalidations;
  LastDowngrades = In.Downgrades;
  LastLogPublishes = In.LogPublishes;
  LastLogRecordsPublished = In.LogRecordsPublished;
  LastLogRecordsConsumed = In.LogRecordsConsumed;
  LastLogBackpressure = In.LogBackpressureStalls;
  LastLogInvalidations = In.LogInvalidations;
  LastPreInvAvoided = In.PreInvalidateAvoided;
  LastCrossNodeHops = In.CrossNodeHops;
  NextSample = (At / Interval + 1) * Interval;
}

void TimelineSampler::writeJson(JsonWriter &W) const {
  W.beginArray();
  for (const TimelineSample &S : Samples) {
    W.beginObject();
    W.member("cycle", S.Cycle);
    W.member("ipc", S.Ipc);
    W.member("inv_per_kcycle", S.InvPerKCycle);
    W.member("down_per_kcycle", S.DownPerKCycle);
    W.member("region_occupancy", S.RegionOccupancy);
    W.member("busy_fraction", S.BusyFraction);
    // Log-coherence keys only appear for racoh samples, so every other
    // backend's timeline JSON is byte-identical to what it always was.
    if (S.LogCoherence) {
      W.member("log_publishes_per_kcycle", S.LogPublishesPerKCycle);
      W.member("log_records_published_per_kcycle",
               S.LogRecordsPublishedPerKCycle);
      W.member("log_records_consumed_per_kcycle",
               S.LogRecordsConsumedPerKCycle);
      W.member("log_backpressure_per_kcycle", S.LogBackpressurePerKCycle);
      W.member("log_inv_per_kcycle", S.LogInvPerKCycle);
      W.member("pre_inv_avoided_per_kcycle", S.PreInvAvoidedPerKCycle);
      W.member("cross_node_hops_per_kcycle", S.CrossNodeHopsPerKCycle);
      W.member("log_queue_peak", S.LogQueuePeak);
    }
    W.endObject();
  }
  W.endArray();
}
