//===- obs/CpiStack.h - Per-core cycle accounting -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "where did the cycles go" view: per-core decomposition of simulated
/// time into compute, cache-hit, directory-wait, coherence-service,
/// memory, and scheduler categories — a CPI stack per benchmark per
/// protocol. The coherence controller charges the legs of each demand
/// access into a per-access scratch; the replayer commits that scratch
/// against the issuing core once it knows how the access retires (blocking
/// load vs. buffered store vs. steal probe) and adds its own scheduler
/// categories directly. Pure accounting on values the simulator already
/// computed: detached costs one null check per hook, attached runs are
/// cycle-identical (asserted by tests/ProfilerTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_OBS_CPISTACK_H
#define WARDEN_OBS_CPISTACK_H

#include "src/support/Types.h"

#include <array>
#include <cstdint>
#include <vector>

namespace warden {

class JsonWriter;

/// Cycle categories of the stack. Keep in sync with cpiCategoryName().
enum class CpiCat : unsigned {
  Compute,             ///< Work events, issue slots, fork/join overhead.
  L1Hit,               ///< Private L1 data hits.
  L2Hit,               ///< Private L2 data hits.
  DirectoryWait,       ///< Trip to the home LLC slice/directory (on-socket).
  RemoteHop,           ///< Cross-socket/remote part of directory trips.
  Dram,                ///< DRAM fetches behind LLC data misses.
  InvalidationService, ///< Waiting for sharer invalidations (GetM).
  DowngradeService,    ///< Waiting for owner downgrade + supply (GetS).
  Reconcile,           ///< WARD add/remove-region instruction work.
  StoreBufferStall,    ///< Full store buffer back-pressure.
  StealWait,           ///< Idle between running out of work and obtaining
                       ///< the next strand (includes probe traffic).
  StoreBuffered,       ///< Store latency absorbed by the store buffer (not
                       ///< on the critical path; reported for contrast —
                       ///< the paper's downgrades-dominate argument).
  Count,
};

const char *cpiCategoryName(CpiCat C);

/// Snapshot of one run's cycle accounting, carried into RunResult. Value
/// semantics so median selection can copy it.
struct CpiReport {
  bool Enabled = false;
  unsigned Cores = 0;
  /// [core][category] cycles. StoreBuffered is off-critical-path and thus
  /// excluded from the residual below.
  std::vector<std::array<Cycles, static_cast<unsigned>(CpiCat::Count)>>
      PerCore;
  /// Per-core end-of-run local time; the difference between this and the
  /// categorised critical-path cycles is reported as "other" (uncharged).
  std::vector<Cycles> CoreTime;

  Cycles total(CpiCat C) const;
  /// Sum of every critical-path category for \p Core (StoreBuffered
  /// excluded).
  Cycles accounted(unsigned Core) const;

  /// Emits the report as one JSON object onto \p W (part of the
  /// "warden-prof-v1" section).
  void writeJson(JsonWriter &W) const;
};

/// The accumulator. One instance observes one simulated run; beginRun()
/// resets it so compare() can reuse the instance for both protocols.
class CpiStack {
public:
  /// Resets all state for a run over \p CoreCount cores.
  void beginRun(unsigned CoreCount);

  // --- Controller-side: per-access scratch ----------------------------------

  /// Charges \p N cycles of the in-flight access to \p C.
  void charge(CpiCat C, Cycles N) {
    Scratch[static_cast<unsigned>(C)] += N;
  }

  /// Commits the scratch to \p Core as critical-path time (blocking loads
  /// and RMWs).
  void commitCritical(CoreId Core);

  /// Commits the scratch to \p Core collapsed into StoreBuffered: the
  /// store's latency retires through the store buffer, off the critical
  /// path.
  void commitBuffered(CoreId Core);

  /// Discards the scratch (steal probes: their latency is already inside
  /// the StealWait window).
  void discard();

  // --- Replayer-side: direct charges ----------------------------------------

  void add(CoreId Core, CpiCat C, Cycles N) {
    PerCore[Core][static_cast<unsigned>(C)] += N;
  }

  /// Records \p Core's final local clock.
  void setCoreTime(CoreId Core, Cycles Now) { CoreTime[Core] = Now; }

  CpiReport report() const;

private:
  static constexpr unsigned NumCats = static_cast<unsigned>(CpiCat::Count);
  std::array<Cycles, NumCats> Scratch = {};
  std::vector<std::array<Cycles, NumCats>> PerCore;
  std::vector<Cycles> CoreTime;
};

} // namespace warden

#endif // WARDEN_OBS_CPISTACK_H
