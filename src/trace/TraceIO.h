//===- trace/TraceIO.h - Task graph (de)serialization ---------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of recorded TaskGraphs. Recording a large
/// benchmark (phase 1) can be saved once and replayed under many machine
/// configurations and protocols later — the same separation the Sniper
/// artifact gets from its trace files.
///
/// Format: a small header (magic, version, strand count) followed by each
/// strand's metadata and packed event array. Fixed-width little-endian
/// fields; not intended to be stable across incompatible versions (the
/// loader rejects mismatches).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_TRACE_TRACEIO_H
#define WARDEN_TRACE_TRACEIO_H

#include "src/trace/TaskGraph.h"

#include <optional>
#include <string>

namespace warden {

/// Writes \p Graph to \p Path. Returns false on I/O failure.
bool writeTaskGraph(const TaskGraph &Graph, const std::string &Path);

/// Reads a graph previously written by writeTaskGraph(). Returns
/// std::nullopt on I/O failure, bad magic, or version mismatch.
std::optional<TaskGraph> readTaskGraph(const std::string &Path);

} // namespace warden

#endif // WARDEN_TRACE_TRACEIO_H
