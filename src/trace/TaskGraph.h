//===- trace/TaskGraph.h - Recorded fork-join task DAG --------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The series-parallel DAG of strands recorded by phase-1 execution. A
/// *strand* is a maximal event sequence with no internal fork or join. A
/// strand either forks (its Children become ready when it completes, and a
/// continuation strand waits on their join) or completes toward a join
/// (decrementing its JoinTarget's pending count).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_TRACE_TASKGRAPH_H
#define WARDEN_TRACE_TASKGRAPH_H

#include "src/trace/TraceEvent.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace warden {

/// Sentinel site id meaning "address not covered by any recorded span"
/// (e.g. scheduler deque lines, which live outside every heap).
inline constexpr std::uint32_t InvalidSite = static_cast<std::uint32_t>(-1);

/// Address-to-allocation-site map recorded during phase 1. The runtime
/// interns one site string per allocation context ("dedup: hash table
/// array", "rt: fork frame", ...) and registers every heap span against it;
/// phase-2 profilers resolve any simulated address back to the code that
/// allocated it. Purely descriptive metadata: the timing simulation never
/// reads it, so traces with and without a map replay identically.
class MemoryMap {
public:
  /// Returns the id of \p Name, creating it on first use.
  std::uint32_t internSite(std::string_view Name) {
    auto It = SiteIds.find(std::string(Name));
    if (It != SiteIds.end())
      return It->second;
    auto Id = static_cast<std::uint32_t>(Sites.size());
    Sites.emplace_back(Name);
    SiteIds.emplace(Sites.back(), Id);
    return Id;
  }

  /// Registers [\p Start, \p End) as belonging to site \p Site. Spans never
  /// overlap (the allocator hands out disjoint ranges).
  void addSpan(Addr Start, Addr End, std::uint32_t Site) {
    Spans[Start] = {End, Site};
  }

  /// Site owning \p Address, or InvalidSite when unmapped.
  std::uint32_t siteOf(Addr Address) const {
    auto It = Spans.upper_bound(Address);
    if (It == Spans.begin())
      return InvalidSite;
    --It;
    return Address < It->second.first ? It->second.second : InvalidSite;
  }

  /// Name of site \p Id ("<unmapped>" for InvalidSite).
  std::string_view siteName(std::uint32_t Id) const {
    return Id < Sites.size() ? std::string_view(Sites[Id])
                             : std::string_view("<unmapped>");
  }

  std::size_t siteCount() const { return Sites.size(); }
  std::size_t spanCount() const { return Spans.size(); }

  /// Span iteration for serialization: start -> (end, site).
  const std::map<Addr, std::pair<Addr, std::uint32_t>> &spans() const {
    return Spans;
  }

private:
  std::vector<std::string> Sites;
  std::map<std::string, std::uint32_t> SiteIds;
  std::map<Addr, std::pair<Addr, std::uint32_t>> Spans;
};

/// One strand of the recorded program.
struct Strand {
  std::vector<TraceEvent> Events;

  /// Strands spawned when this strand completes (fork). Children[0] is the
  /// branch the forking core continues with; the rest are pushed onto its
  /// deque for stealing, mirroring the MPL scheduler.
  std::vector<StrandId> Children;

  /// Join continuation this strand notifies on completion, or
  /// InvalidStrand for the final root strand.
  StrandId JoinTarget = InvalidStrand;

  /// Number of completions the strand waits for before becoming ready
  /// (nonzero only for join continuations).
  std::uint32_t PendingJoin = 0;

  /// Simulated address of the join counter this strand's completers RMW.
  /// Valid when PendingJoin > 0.
  Addr JoinCounterAddr = 0;

  bool isForkPoint() const { return !Children.empty(); }
};

/// The recorded program: strands plus entry point.
class TaskGraph {
public:
  StrandId addStrand() {
    Strands.emplace_back();
    return static_cast<StrandId>(Strands.size() - 1);
  }

  Strand &strand(StrandId Id) { return Strands[Id]; }
  const Strand &strand(StrandId Id) const { return Strands[Id]; }

  std::size_t size() const { return Strands.size(); }

  StrandId root() const { return Root; }
  void setRoot(StrandId Id) { Root = Id; }

  /// Total instructions across all strands (protocol-independent part).
  std::uint64_t totalInstructions() const;

  /// Total recorded events.
  std::uint64_t totalEvents() const;

  /// Span (critical-path instructions) of the DAG; with totalInstructions()
  /// this gives the average-parallelism diagnostic printed by harnesses.
  std::uint64_t spanInstructions() const;

  /// Allocation-site metadata recorded alongside the strands.
  MemoryMap &memoryMap() { return Memory; }
  const MemoryMap &memoryMap() const { return Memory; }

private:
  std::vector<Strand> Strands;
  StrandId Root = InvalidStrand;
  MemoryMap Memory;
};

} // namespace warden

#endif // WARDEN_TRACE_TASKGRAPH_H
