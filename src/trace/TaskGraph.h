//===- trace/TaskGraph.h - Recorded fork-join task DAG --------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The series-parallel DAG of strands recorded by phase-1 execution. A
/// *strand* is a maximal event sequence with no internal fork or join. A
/// strand either forks (its Children become ready when it completes, and a
/// continuation strand waits on their join) or completes toward a join
/// (decrementing its JoinTarget's pending count).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_TRACE_TASKGRAPH_H
#define WARDEN_TRACE_TASKGRAPH_H

#include "src/trace/TraceEvent.h"

#include <cstdint>
#include <vector>

namespace warden {

/// One strand of the recorded program.
struct Strand {
  std::vector<TraceEvent> Events;

  /// Strands spawned when this strand completes (fork). Children[0] is the
  /// branch the forking core continues with; the rest are pushed onto its
  /// deque for stealing, mirroring the MPL scheduler.
  std::vector<StrandId> Children;

  /// Join continuation this strand notifies on completion, or
  /// InvalidStrand for the final root strand.
  StrandId JoinTarget = InvalidStrand;

  /// Number of completions the strand waits for before becoming ready
  /// (nonzero only for join continuations).
  std::uint32_t PendingJoin = 0;

  /// Simulated address of the join counter this strand's completers RMW.
  /// Valid when PendingJoin > 0.
  Addr JoinCounterAddr = 0;

  bool isForkPoint() const { return !Children.empty(); }
};

/// The recorded program: strands plus entry point.
class TaskGraph {
public:
  StrandId addStrand() {
    Strands.emplace_back();
    return static_cast<StrandId>(Strands.size() - 1);
  }

  Strand &strand(StrandId Id) { return Strands[Id]; }
  const Strand &strand(StrandId Id) const { return Strands[Id]; }

  std::size_t size() const { return Strands.size(); }

  StrandId root() const { return Root; }
  void setRoot(StrandId Id) { Root = Id; }

  /// Total instructions across all strands (protocol-independent part).
  std::uint64_t totalInstructions() const;

  /// Total recorded events.
  std::uint64_t totalEvents() const;

  /// Span (critical-path instructions) of the DAG; with totalInstructions()
  /// this gives the average-parallelism diagnostic printed by harnesses.
  std::uint64_t spanInstructions() const;

private:
  std::vector<Strand> Strands;
  StrandId Root = InvalidStrand;
};

} // namespace warden

#endif // WARDEN_TRACE_TASKGRAPH_H
