//===- trace/TraceEvent.h - Recorded per-strand events ---------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary recorded during phase-1 (functional) execution and
/// replayed by the phase-2 timing scheduler. A strand's trace is the exact
/// sequence of memory references, compute batches, and WARD region
/// instructions it performs.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_TRACE_TRACEEVENT_H
#define WARDEN_TRACE_TRACEEVENT_H

#include "src/support/Types.h"

#include <cstdint>

namespace warden {

/// Kind of a recorded event.
enum class TraceOp : std::uint8_t {
  Load,         ///< Blocking read of Size bytes at Address.
  Store,        ///< Buffered write of Size bytes at Address.
  Rmw,          ///< Atomic read-modify-write (blocking) at Address.
  Work,         ///< Extra cycles of pure compute between memory references.
  MarkRegion,   ///< "Add Region" instruction: [Address, Extra) becomes WARD.
  UnmarkRegion, ///< "Remove Region" instruction: region Region reconciles.
};

/// One recorded event. Mark events carry the interval in (Address, Extra);
/// Work events carry the cycle count in Extra.
struct TraceEvent {
  Addr Address = 0;
  std::uint64_t Extra = 0;
  RegionId Region = InvalidRegion;
  TraceOp Op = TraceOp::Work;
  std::uint8_t Size = 0;

  static TraceEvent load(Addr Address, unsigned Size) {
    return {Address, 0, InvalidRegion, TraceOp::Load,
            static_cast<std::uint8_t>(Size)};
  }
  static TraceEvent store(Addr Address, unsigned Size) {
    return {Address, 0, InvalidRegion, TraceOp::Store,
            static_cast<std::uint8_t>(Size)};
  }
  static TraceEvent rmw(Addr Address, unsigned Size) {
    return {Address, 0, InvalidRegion, TraceOp::Rmw,
            static_cast<std::uint8_t>(Size)};
  }
  static TraceEvent work(std::uint64_t Cycles) {
    return {0, Cycles, InvalidRegion, TraceOp::Work, 0};
  }
  static TraceEvent mark(RegionId Region, Addr Start, Addr End) {
    return {Start, End, Region, TraceOp::MarkRegion, 0};
  }
  static TraceEvent unmark(RegionId Region) {
    return {0, 0, Region, TraceOp::UnmarkRegion, 0};
  }

  /// Instructions this event represents (Work batches count one
  /// instruction per cycle at the core's sustained rate).
  std::uint64_t instructions() const {
    switch (Op) {
    case TraceOp::Work:
      return Extra;
    case TraceOp::MarkRegion:
    case TraceOp::UnmarkRegion:
      return 1;
    default:
      return 1;
    }
  }
};

} // namespace warden

#endif // WARDEN_TRACE_TRACEEVENT_H
