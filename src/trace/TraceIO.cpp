//===- trace/TraceIO.cpp - Task graph (de)serialization ---------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/trace/TraceIO.h"

#include <cstdio>
#include <cstring>
#include <memory>

using namespace warden;

namespace {

constexpr std::uint64_t Magic = 0x57415244454e3147ULL; // "WARDEN1G"
// Version 3 appends the allocation-site memory map after the strands.
constexpr std::uint32_t Version = 3;

struct FileCloser {
  void operator()(std::FILE *File) const {
    if (File)
      std::fclose(File);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

bool writeRaw(std::FILE *File, const void *Data, std::size_t Size) {
  return std::fwrite(Data, 1, Size, File) == Size;
}

bool readRaw(std::FILE *File, void *Data, std::size_t Size) {
  return std::fread(Data, 1, Size, File) == Size;
}

template <typename T> bool writeValue(std::FILE *File, const T &Value) {
  return writeRaw(File, &Value, sizeof(T));
}

template <typename T> bool readValue(std::FILE *File, T &Value) {
  return readRaw(File, &Value, sizeof(T));
}

/// On-disk event layout (independent of TraceEvent's in-memory padding).
struct PackedEvent {
  std::uint64_t Address;
  std::uint64_t Extra;
  std::uint32_t Region;
  std::uint8_t Op;
  std::uint8_t Size;
  std::uint8_t Pad[2] = {0, 0};
};
static_assert(sizeof(PackedEvent) == 24, "unexpected packing");

} // namespace

bool warden::writeTaskGraph(const TaskGraph &Graph, const std::string &Path) {
  FileHandle File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return false;
  if (!writeValue(File.get(), Magic) || !writeValue(File.get(), Version))
    return false;
  std::uint64_t Count = Graph.size();
  std::uint32_t Root = Graph.root();
  if (!writeValue(File.get(), Count) || !writeValue(File.get(), Root))
    return false;

  for (StrandId Id = 0; Id < Graph.size(); ++Id) {
    const Strand &S = Graph.strand(Id);
    std::uint32_t ChildCount = static_cast<std::uint32_t>(S.Children.size());
    std::uint64_t EventCount = S.Events.size();
    if (!writeValue(File.get(), ChildCount) ||
        !writeValue(File.get(), S.JoinTarget) ||
        !writeValue(File.get(), S.PendingJoin) ||
        !writeValue(File.get(), S.JoinCounterAddr) ||
        !writeValue(File.get(), EventCount))
      return false;
    for (StrandId Child : S.Children)
      if (!writeValue(File.get(), Child))
        return false;
    for (const TraceEvent &E : S.Events) {
      PackedEvent Packed;
      Packed.Address = E.Address;
      Packed.Extra = E.Extra;
      Packed.Region = E.Region;
      Packed.Op = static_cast<std::uint8_t>(E.Op);
      Packed.Size = E.Size;
      if (!writeValue(File.get(), Packed))
        return false;
    }
  }

  const MemoryMap &Memory = Graph.memoryMap();
  std::uint32_t SiteCount = static_cast<std::uint32_t>(Memory.siteCount());
  if (!writeValue(File.get(), SiteCount))
    return false;
  for (std::uint32_t Id = 0; Id < SiteCount; ++Id) {
    std::string_view Name = Memory.siteName(Id);
    std::uint32_t Len = static_cast<std::uint32_t>(Name.size());
    if (!writeValue(File.get(), Len) ||
        !writeRaw(File.get(), Name.data(), Name.size()))
      return false;
  }
  std::uint64_t SpanCount = Memory.spanCount();
  if (!writeValue(File.get(), SpanCount))
    return false;
  for (const auto &[Start, EndSite] : Memory.spans())
    if (!writeValue(File.get(), Start) ||
        !writeValue(File.get(), EndSite.first) ||
        !writeValue(File.get(), EndSite.second))
      return false;
  return std::fflush(File.get()) == 0;
}

std::optional<TaskGraph> warden::readTaskGraph(const std::string &Path) {
  FileHandle File(std::fopen(Path.c_str(), "rb"));
  if (!File)
    return std::nullopt;
  std::uint64_t FileMagic = 0;
  std::uint32_t FileVersion = 0;
  if (!readValue(File.get(), FileMagic) ||
      !readValue(File.get(), FileVersion) || FileMagic != Magic ||
      FileVersion != Version)
    return std::nullopt;

  std::uint64_t Count = 0;
  std::uint32_t Root = 0;
  if (!readValue(File.get(), Count) || !readValue(File.get(), Root))
    return std::nullopt;
  if (Count > (std::uint64_t(1) << 32) || Root >= Count)
    return std::nullopt;

  TaskGraph Graph;
  for (std::uint64_t I = 0; I < Count; ++I)
    Graph.addStrand();
  Graph.setRoot(Root);

  for (StrandId Id = 0; Id < Count; ++Id) {
    Strand &S = Graph.strand(Id);
    std::uint32_t ChildCount = 0;
    std::uint64_t EventCount = 0;
    if (!readValue(File.get(), ChildCount) ||
        !readValue(File.get(), S.JoinTarget) ||
        !readValue(File.get(), S.PendingJoin) ||
        !readValue(File.get(), S.JoinCounterAddr) ||
        !readValue(File.get(), EventCount))
      return std::nullopt;
    if (ChildCount > Count || EventCount > (std::uint64_t(1) << 40))
      return std::nullopt;
    S.Children.resize(ChildCount);
    for (std::uint32_t C = 0; C < ChildCount; ++C) {
      if (!readValue(File.get(), S.Children[C]))
        return std::nullopt;
      if (S.Children[C] >= Count)
        return std::nullopt;
    }
    S.Events.reserve(EventCount);
    for (std::uint64_t E = 0; E < EventCount; ++E) {
      PackedEvent Packed;
      if (!readValue(File.get(), Packed))
        return std::nullopt;
      if (Packed.Op > static_cast<std::uint8_t>(TraceOp::UnmarkRegion))
        return std::nullopt;
      TraceEvent Event;
      Event.Address = Packed.Address;
      Event.Extra = Packed.Extra;
      Event.Region = Packed.Region;
      Event.Op = static_cast<TraceOp>(Packed.Op);
      Event.Size = Packed.Size;
      S.Events.push_back(Event);
    }
  }

  MemoryMap &Memory = Graph.memoryMap();
  std::uint32_t SiteCount = 0;
  if (!readValue(File.get(), SiteCount) ||
      SiteCount > (std::uint32_t(1) << 24))
    return std::nullopt;
  for (std::uint32_t Id = 0; Id < SiteCount; ++Id) {
    std::uint32_t Len = 0;
    if (!readValue(File.get(), Len) || Len > (std::uint32_t(1) << 16))
      return std::nullopt;
    std::string Name(Len, '\0');
    if (!readRaw(File.get(), Name.data(), Len))
      return std::nullopt;
    // Interning preserves ids because the writer emitted names in id order.
    if (Memory.internSite(Name) != Id)
      return std::nullopt; // Duplicate name: the file is corrupt.
  }
  std::uint64_t SpanCount = 0;
  if (!readValue(File.get(), SpanCount) ||
      SpanCount > (std::uint64_t(1) << 40))
    return std::nullopt;
  for (std::uint64_t I = 0; I < SpanCount; ++I) {
    Addr Start = 0, End = 0;
    std::uint32_t Site = 0;
    if (!readValue(File.get(), Start) || !readValue(File.get(), End) ||
        !readValue(File.get(), Site))
      return std::nullopt;
    if (End <= Start || Site >= SiteCount)
      return std::nullopt;
    Memory.addSpan(Start, End, Site);
  }
  return Graph;
}
