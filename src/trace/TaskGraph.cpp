//===- trace/TaskGraph.cpp - Recorded fork-join task DAG ------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/trace/TaskGraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace warden;

std::uint64_t TaskGraph::totalInstructions() const {
  std::uint64_t Total = 0;
  for (const Strand &S : Strands)
    for (const TraceEvent &E : S.Events)
      Total += E.instructions();
  return Total;
}

std::uint64_t TaskGraph::totalEvents() const {
  std::uint64_t Total = 0;
  for (const Strand &S : Strands)
    Total += S.Events.size();
  return Total;
}

std::uint64_t TaskGraph::spanInstructions() const {
  if (Strands.empty())
    return 0;
  // Longest path over the series-parallel DAG, by Kahn-style relaxation.
  std::vector<std::uint32_t> Pending(Strands.size(), 0);
  std::vector<std::uint64_t> StartLength(Strands.size(), 0);
  for (const Strand &S : Strands) {
    for (StrandId Child : S.Children)
      Pending[Child] += 1;
    if (S.JoinTarget != InvalidStrand)
      Pending[S.JoinTarget] += 1;
  }

  std::deque<StrandId> Ready;
  assert(Root != InvalidStrand && "graph has no root");
  Ready.push_back(Root);
  std::uint64_t Span = 0;
  while (!Ready.empty()) {
    StrandId Id = Ready.front();
    Ready.pop_front();
    const Strand &S = Strands[Id];
    std::uint64_t Mine = 0;
    for (const TraceEvent &E : S.Events)
      Mine += E.instructions();
    std::uint64_t Finish = StartLength[Id] + Mine;
    Span = std::max(Span, Finish);
    auto Relax = [&](StrandId Next) {
      StartLength[Next] = std::max(StartLength[Next], Finish);
      assert(Pending[Next] > 0 && "in-degree underflow");
      if (--Pending[Next] == 0)
        Ready.push_back(Next);
    };
    for (StrandId Child : S.Children)
      Relax(Child);
    if (S.JoinTarget != InvalidStrand)
      Relax(S.JoinTarget);
  }
  return Span;
}
