//===- mem/SectorMask.h - Byte-granularity dirty sector masks -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-granularity write ("sector") masks for cache blocks. Section 6.1:
/// sectored caches add one bit per eight data bits so reconciliation can
/// tell which bytes of a WARD block each private copy mutated. With 64-byte
/// blocks the mask is exactly one 64-bit word.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_SECTORMASK_H
#define WARDEN_MEM_SECTORMASK_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace warden {

/// Dirty-byte mask for one cache block (up to 64 bytes).
class SectorMask {
public:
  static constexpr unsigned MaxBytes = 64;

  SectorMask() = default;

  /// Marks bytes [Offset, Offset + Size) as written.
  void markWritten(unsigned Offset, unsigned Size) {
    assert(Offset + Size <= MaxBytes && "write beyond block");
    assert(Size > 0 && "empty write");
    Bits |= rangeMask(Offset, Size);
  }

  /// Returns true if any byte in [Offset, Offset + Size) is dirty.
  bool anyWritten(unsigned Offset, unsigned Size) const {
    assert(Offset + Size <= MaxBytes && "probe beyond block");
    return (Bits & rangeMask(Offset, Size)) != 0;
  }

  bool any() const { return Bits != 0; }

  unsigned count() const { return std::popcount(Bits); }

  void clear() { Bits = 0; }

  /// Returns true if this mask overlaps \p Other — i.e. two private copies
  /// wrote at least one common byte, which is the "true sharing" case of
  /// Section 5.2's reconciliation taxonomy.
  bool overlaps(const SectorMask &Other) const {
    return (Bits & Other.Bits) != 0;
  }

  /// Merges \p Other's dirty bytes into this mask (used as blocks are
  /// reconciled back to the shared cache).
  void merge(const SectorMask &Other) { Bits |= Other.Bits; }

  std::uint64_t raw() const { return Bits; }

  bool operator==(const SectorMask &Other) const = default;

private:
  static std::uint64_t rangeMask(unsigned Offset, unsigned Size) {
    std::uint64_t Width =
        Size >= 64 ? ~0ULL : ((1ULL << Size) - 1);
    return Width << Offset;
  }

  std::uint64_t Bits = 0;
};

} // namespace warden

#endif // WARDEN_MEM_SECTORMASK_H
