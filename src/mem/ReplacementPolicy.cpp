//===- mem/ReplacementPolicy.cpp - Pluggable cache replacement ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/mem/ReplacementPolicy.h"

#include "src/mem/CacheArray.h"
#include "src/support/Registry.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

using namespace warden;

ReplacementPolicy::ReplacementPolicy(const CacheGeometry &Geometry)
    : Geometry(Geometry), HintWay(Geometry.NumSets, 0) {}

ReplacementPolicy::~ReplacementPolicy() = default;

void ReplacementPolicy::evicted(const CacheLine *Set, unsigned SetIndex,
                                unsigned Way) {
  (void)Set;
  (void)SetIndex;
  (void)Way;
}

void ReplacementPolicy::invalidated(CacheLine *Set, unsigned SetIndex,
                                    unsigned Way) {
  (void)Set;
  (void)SetIndex;
  (void)Way;
}

void ReplacementPolicy::setRegionProbe(RegionMembershipProbe Probe) {
  (void)Probe;
}

LruPolicy *ReplacementPolicy::asLru() { return nullptr; }

//===----------------------------------------------------------------------===//
// lru — exact LRU, verbatim the pre-registry CacheArray algorithm
//===----------------------------------------------------------------------===//

LruPolicy::LruPolicy(const CacheGeometry &Geometry)
    : ReplacementPolicy(Geometry) {}

void LruPolicy::touch(CacheLine *Set, unsigned SetIndex, unsigned Way) {
  (void)SetIndex;
  Set[Way].Repl = NextStamp++;
}

unsigned LruPolicy::victim(CacheLine *Set, unsigned SetIndex) {
  (void)SetIndex;
  // Strictly-smallest stamp scanning from way 0 — the exact tie-break the
  // pre-registry combined scan produced for an all-valid set.
  unsigned Victim = 0;
  for (unsigned Way = 1; Way < Geometry.Assoc; ++Way)
    if (Set[Way].Repl < Set[Victim].Repl)
      Victim = Way;
  return Victim;
}

void LruPolicy::fill(CacheLine *Set, unsigned SetIndex, unsigned Way) {
  (void)SetIndex;
  Set[Way].Repl = NextStamp++;
}

LruPolicy *LruPolicy::asLru() { return this; }

//===----------------------------------------------------------------------===//
// rrip — 2-bit SRRIP
//===----------------------------------------------------------------------===//

namespace {

/// Static re-reference interval prediction (Jaleel et al.) with a 2-bit
/// re-reference prediction value (RRPV) per line, stored in the line's
/// Repl word. Fills predict a "long" interval (MaxRrpv - 1), hits promote
/// to "immediate" (0), and victim search ages the whole set until some way
/// reaches "distant" (MaxRrpv), evicting the lowest such way —
/// scan-resistant where pure LRU thrashes.
class RripPolicy final : public ReplacementPolicy {
public:
  explicit RripPolicy(const CacheGeometry &Geometry)
      : ReplacementPolicy(Geometry) {}

  void touch(CacheLine *Set, unsigned, unsigned Way) override {
    Set[Way].Repl = 0;
  }

  unsigned victim(CacheLine *Set, unsigned) override {
    for (;;) {
      for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
        if (Set[Way].Repl >= MaxRrpv)
          return Way;
      for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
        ++Set[Way].Repl;
    }
  }

  void fill(CacheLine *Set, unsigned, unsigned Way) override {
    Set[Way].Repl = MaxRrpv - 1;
  }

private:
  static constexpr std::uint64_t MaxRrpv = 3;
};

//===----------------------------------------------------------------------===//
// perceptron / perceptron-ward — hashed-perceptron reuse prediction
//===----------------------------------------------------------------------===//

/// Hashed-perceptron reuse predictor in the style of Teran, Wang, and
/// Jimenez ("Perceptron Learning for Reuse Prediction", MICRO 2016),
/// restricted to deterministic integer arithmetic.
///
/// Each fill extracts NumTables 8-bit features from the filled block —
/// low/mid/high address shards plus a page-granule hash standing in for
/// the allocation site (recorded traces lay allocation sites out
/// page-contiguously, so the page hash separates data structures the same
/// way a PC hash separates them in hardware) — and packs the feature
/// signature into the line's Repl word together with a fill/touch age
/// tick. The prediction for a line is the sum of the saturating signed
/// weights its stored signature indexes; larger sums mean "more
/// confidently dead".
///
/// Training follows the perceptron rule with a confidence threshold Theta:
/// a hit decrements the line's weights (toward reuse) unless the sum is
/// already confidently negative; a capacity eviction increments them
/// (toward death) unless already confidently positive. Victim selection
/// evicts the way with the largest sum, breaking ties toward the oldest
/// age tick and then the lowest way index — all integer comparisons, so
/// the choice is a pure function of the access sequence and reports stay
/// byte-identical at any --jobs/--intra-jobs.
///
/// The "perceptron-ward" variant rededicates the last feature slot to
/// coherence-layer context sampled at fill time: disjoint-region
/// membership (from the controller's region table via the installed
/// probe), WARD state, and write intent. Region-resident lines get their
/// own weight rows, letting the predictor learn, e.g., that WARD-granted
/// lines in hot regions are worth keeping until reconciliation.
class PerceptronPolicy final : public ReplacementPolicy {
public:
  PerceptronPolicy(const CacheGeometry &Geometry, bool WardFeatures)
      : ReplacementPolicy(Geometry), WardFeatures(WardFeatures) {
    std::fill(&Weights[0][0], &Weights[0][0] + NumTables * TableSize,
              static_cast<std::int8_t>(0));
  }

  void touch(CacheLine *Set, unsigned, unsigned Way) override {
    std::uint64_t Sig = Set[Way].Repl & SigMask;
    if (predict(Sig) > -Theta)
      train(Sig, /*TowardDeath=*/false);
    Set[Way].Repl = Sig | (std::uint64_t(nextAge()) << AgeShift);
  }

  unsigned victim(CacheLine *Set, unsigned) override {
    unsigned Best = 0;
    int BestScore = predict(Set[0].Repl & SigMask);
    std::uint32_t BestAge = age(Set[0].Repl);
    for (unsigned Way = 1; Way < Geometry.Assoc; ++Way) {
      int Score = predict(Set[Way].Repl & SigMask);
      std::uint32_t WayAge = age(Set[Way].Repl);
      if (Score > BestScore || (Score == BestScore && WayAge < BestAge)) {
        Best = Way;
        BestScore = Score;
        BestAge = WayAge;
      }
    }
    return Best;
  }

  void evicted(const CacheLine *Set, unsigned, unsigned Way) override {
    std::uint64_t Sig = Set[Way].Repl & SigMask;
    if (predict(Sig) < Theta)
      train(Sig, /*TowardDeath=*/true);
  }

  void fill(CacheLine *Set, unsigned, unsigned Way) override {
    std::uint64_t Sig = signatureFor(Set[Way]);
    Set[Way].Repl = Sig | (std::uint64_t(nextAge()) << AgeShift);
  }

  void setRegionProbe(RegionMembershipProbe P) override {
    Probe = std::move(P);
  }

private:
  static constexpr unsigned NumTables = 4;
  static constexpr unsigned TableBits = 8;
  static constexpr unsigned TableSize = 1u << TableBits;
  static constexpr int WeightMax = 31; ///< 6-bit saturating counters.
  static constexpr int WeightMin = -32;
  static constexpr int Theta = 16; ///< Training confidence threshold.
  static constexpr unsigned AgeShift = NumTables * TableBits;
  static constexpr std::uint64_t SigMask = (std::uint64_t(1) << AgeShift) - 1;
  static constexpr std::uint32_t AgeMask = 0xfffffff; ///< 28-bit tick.

  std::uint32_t nextAge() { return ++AgeTick & AgeMask; }

  static std::uint32_t age(std::uint64_t Repl) {
    return static_cast<std::uint32_t>(Repl >> AgeShift) & AgeMask;
  }

  /// Fill-time feature extraction. Features 0-2 are address shards at
  /// line, page, and region granularities; feature 3 is either another
  /// address shard (plain perceptron) or the coherence-context byte
  /// (perceptron-ward).
  std::uint64_t signatureFor(const CacheLine &Line) const {
    Addr B = Line.Block;
    std::uint64_t F0 = (B >> 6) & 0xff;
    std::uint64_t F1 = ((B >> 12) * 0x9E3779B1u >> 24) & 0xff;
    std::uint64_t F2 = ((B >> 8) ^ (B >> 16) ^ (B >> 24)) & 0xff;
    std::uint64_t F3;
    if (WardFeatures) {
      unsigned Ctx = 0;
      if (Probe && Probe(B))
        Ctx |= 1; // Inside a tracked disjoint-access region.
      if (Line.State == LineState::Ward)
        Ctx |= 2; // Filled under an active WARD grant.
      if (Line.State == LineState::Modified ||
          Line.State == LineState::Exclusive || Line.State == LineState::Ward)
        Ctx |= 4; // Write-intent fill.
      // Spread the eight context values across the table so they do not
      // alias each other's weights.
      F3 = (Ctx * 0x1d) & 0xff;
    } else {
      F3 = ((B >> 20) ^ (B >> 27)) & 0xff;
    }
    return F0 | (F1 << 8) | (F2 << 16) | (F3 << 24);
  }

  int predict(std::uint64_t Sig) const {
    int Sum = 0;
    for (unsigned T = 0; T < NumTables; ++T)
      Sum += Weights[T][(Sig >> (T * TableBits)) & (TableSize - 1)];
    return Sum;
  }

  void train(std::uint64_t Sig, bool TowardDeath) {
    for (unsigned T = 0; T < NumTables; ++T) {
      std::int8_t &W = Weights[T][(Sig >> (T * TableBits)) & (TableSize - 1)];
      if (TowardDeath) {
        if (W < WeightMax)
          ++W;
      } else {
        if (W > WeightMin)
          --W;
      }
    }
  }

  bool WardFeatures;
  RegionMembershipProbe Probe;
  std::int8_t Weights[NumTables][TableSize];
  std::uint32_t AgeTick = 0;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct ReplacementEntry {
  ReplacementFactory Factory;
};

struct ReplacementRegistry {
  Registry<ReplacementEntry> Table;

  ReplacementRegistry() {
    Table.insertOrReplace(
        std::string(DefaultReplacementId),
        ReplacementEntry{[](const CacheGeometry &G) {
          return std::unique_ptr<ReplacementPolicy>(new LruPolicy(G));
        }});
    Table.insertOrReplace(
        "rrip", ReplacementEntry{[](const CacheGeometry &G) {
          return std::unique_ptr<ReplacementPolicy>(new RripPolicy(G));
        }});
    Table.insertOrReplace(
        "perceptron", ReplacementEntry{[](const CacheGeometry &G) {
          return std::unique_ptr<ReplacementPolicy>(
              new PerceptronPolicy(G, /*WardFeatures=*/false));
        }});
    Table.insertOrReplace(
        "perceptron-ward", ReplacementEntry{[](const CacheGeometry &G) {
          return std::unique_ptr<ReplacementPolicy>(
              new PerceptronPolicy(G, /*WardFeatures=*/true));
        }});
  }
};

Registry<ReplacementEntry> &replacementRegistry() {
  static ReplacementRegistry R;
  return R.Table;
}

} // namespace

bool warden::registerReplacementPolicy(std::string Id,
                                       ReplacementFactory Factory) {
  return replacementRegistry().insertOrReplace(
      std::move(Id), ReplacementEntry{std::move(Factory)});
}

std::unique_ptr<ReplacementPolicy>
warden::makeReplacementPolicy(std::string_view Id,
                              const CacheGeometry &Geometry) {
  std::optional<ReplacementEntry> Entry = replacementRegistry().find(Id);
  if (!Entry)
    throw std::invalid_argument(
        "no replacement policy registered under id '" + std::string(Id) +
        "' (registered ids: " + replacementRegistry().joinedIds() + ")");
  return Entry->Factory(Geometry);
}

bool warden::isRegisteredReplacementId(std::string_view Id) {
  return replacementRegistry().find(Id).has_value();
}

std::vector<std::string> warden::registeredReplacementIds() {
  return replacementRegistry().ids();
}

std::optional<std::vector<std::string>>
warden::parseReplacementList(std::string_view List, std::string &Error) {
  if (List.empty()) {
    Error = "empty replacement list (expected comma-separated ids: " +
            replacementRegistry().joinedIds() + ")";
    return std::nullopt;
  }
  std::vector<std::string> Ids;
  std::size_t Pos = 0;
  while (Pos <= List.size()) {
    std::size_t Comma = List.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = List.size();
    std::string_view Id = List.substr(Pos, Comma - Pos);
    if (Id.empty()) {
      Error = "empty replacement id in list '" + std::string(List) +
              "' (leading, trailing, or doubled comma)";
      return std::nullopt;
    }
    if (!isRegisteredReplacementId(Id)) {
      Error = "unknown replacement id '" + std::string(Id) +
              "' (registered ids: " + replacementRegistry().joinedIds() + ")";
      return std::nullopt;
    }
    if (std::find(Ids.begin(), Ids.end(), Id) != Ids.end()) {
      Error = "duplicate replacement id '" + std::string(Id) + "' in list '" +
              std::string(List) + "'";
      return std::nullopt;
    }
    Ids.emplace_back(Id);
    Pos = Comma + 1;
    if (Comma == List.size())
      break;
  }
  return Ids;
}
