//===- mem/CacheArray.cpp - Set-associative cache array -------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/mem/CacheArray.h"

#include "src/mem/ReplacementPolicy.h"

#include <cassert>

using namespace warden;

const char *warden::lineStateName(LineState State) {
  switch (State) {
  case LineState::Invalid:
    return "I";
  case LineState::Shared:
    return "S";
  case LineState::Exclusive:
    return "E";
  case LineState::Modified:
    return "M";
  case LineState::Ward:
    return "W";
  }
  return "?";
}

CacheArray::CacheArray(const CacheGeometry &Geometry, std::string_view Policy)
    : Geometry(Geometry),
      // Deliberately uninitialized: sets are placement-constructed on
      // first insert (see touchSet), so construction cost is independent
      // of the array's nominal capacity.
      Storage(new std::byte[static_cast<std::size_t>(Geometry.NumSets) *
                            Geometry.Assoc * sizeof(CacheLine)]),
      SetLive(Geometry.NumSets, 0),
      Policy(makeReplacementPolicy(Policy, Geometry)),
      FastLru(this->Policy->asLru()) {}

CacheArray::~CacheArray() = default;
CacheArray::CacheArray(CacheArray &&) noexcept = default;
CacheArray &CacheArray::operator=(CacheArray &&) noexcept = default;

CacheLine *CacheArray::touchSet(unsigned SetIndex) {
  CacheLine *Set = rawSet(SetIndex);
  if (!SetLive[SetIndex]) {
    for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
      ::new (static_cast<void *>(Set + Way)) CacheLine();
    SetLive[SetIndex] = 1;
  }
  return std::launder(Set);
}

CacheLine *CacheArray::lookup(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (Line) {
    if (FastLru) {
      // Devirtualized default: exactly the pre-registry stamp-on-hit.
      Line->Repl = FastLru->NextStamp++;
    } else {
      unsigned SetIndex = Geometry.setIndex(BlockAddress);
      CacheLine *Set = liveSet(SetIndex);
      Policy->touch(Set, SetIndex, static_cast<unsigned>(Line - Set));
    }
  }
  return Line;
}

CacheLine *CacheArray::probe(Addr BlockAddress) {
  assert(Geometry.blockAddr(BlockAddress) == BlockAddress &&
         "address must be block-aligned");
  unsigned SetIndex = Geometry.setIndex(BlockAddress);
  if (!SetLive[SetIndex])
    return nullptr; // Untouched set: trivially a miss.
  CacheLine *Set = liveSet(SetIndex);
  // Most probes re-find the way hit last time (consecutive accesses to a
  // hot block); checking the policy's hint first is a pure host-side
  // search-order shortcut — the result and replacement behaviour are
  // unchanged. The hint is never trusted on its own: a policy may reorder
  // lines within the set from fill() and leave the hint stale, so both the
  // validity and the block address are re-checked before returning
  // (tests/MemTest.cpp ReplacementPolicyHint.* pins this down).
  const unsigned First = Policy->probeHint(SetIndex);
  if (Set[First].valid() && Set[First].Block == BlockAddress)
    return &Set[First];
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
    if (Way != First && Set[Way].valid() && Set[Way].Block == BlockAddress) {
      Policy->noteProbeHit(SetIndex, Way);
      return &Set[Way];
    }
  return nullptr;
}

const CacheLine *CacheArray::probe(Addr BlockAddress) const {
  return const_cast<CacheArray *>(this)->probe(BlockAddress);
}

std::optional<EvictedLine> CacheArray::insert(Addr BlockAddress,
                                              LineState State) {
  assert(State != LineState::Invalid && "cannot insert an invalid line");
  assert(!probe(BlockAddress) && "block already present");
  unsigned SetIndex = Geometry.setIndex(BlockAddress);
  CacheLine *Set = touchSet(SetIndex);

  // Invalid ways are filled first regardless of policy (every policy wants
  // a free way over a victim); only a full set consults the policy.
  unsigned VictimWay = Geometry.Assoc;
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
    if (!Set[Way].valid()) {
      VictimWay = Way;
      break;
    }
  if (VictimWay == Geometry.Assoc) {
    if (FastLru) {
      // Devirtualized default: strictly-smallest stamp from way 0 —
      // verbatim the pre-registry scan for an all-valid set.
      VictimWay = 0;
      for (unsigned Way = 1; Way < Geometry.Assoc; ++Way)
        if (Set[Way].Repl < Set[VictimWay].Repl)
          VictimWay = Way;
    } else {
      VictimWay = Policy->victim(Set, SetIndex);
      assert(VictimWay < Geometry.Assoc && "policy returned an invalid way");
    }
  }
  CacheLine *Victim = &Set[VictimWay];

  std::optional<EvictedLine> Displaced;
  if (Victim->valid()) {
    Displaced = EvictedLine{Victim->Block, Victim->State, Victim->Dirty};
    if (!FastLru)
      Policy->evicted(Set, SetIndex, VictimWay);
  }

  Victim->Block = BlockAddress;
  Victim->State = State;
  Victim->Dirty.clear();
  Policy->noteProbeHit(SetIndex, VictimWay);
  if (FastLru)
    Victim->Repl = FastLru->NextStamp++;
  else
    Policy->fill(Set, SetIndex, VictimWay);
  return Displaced;
}

std::optional<EvictedLine> CacheArray::invalidate(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (!Line)
    return std::nullopt;
  EvictedLine Old{Line->Block, Line->State, Line->Dirty};
  Line->State = LineState::Invalid;
  Line->Dirty.clear();
  if (!FastLru) {
    unsigned SetIndex = Geometry.setIndex(BlockAddress);
    CacheLine *Set = liveSet(SetIndex);
    Policy->invalidated(Set, SetIndex, static_cast<unsigned>(Line - Set));
  }
  return Old;
}

std::size_t CacheArray::validLineCount() const {
  std::size_t Count = 0;
  forEachValidLine([&Count](const CacheLine &) { ++Count; });
  return Count;
}
