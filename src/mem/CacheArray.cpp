//===- mem/CacheArray.cpp - LRU set-associative cache array ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/mem/CacheArray.h"

#include <cassert>

using namespace warden;

const char *warden::lineStateName(LineState State) {
  switch (State) {
  case LineState::Invalid:
    return "I";
  case LineState::Shared:
    return "S";
  case LineState::Exclusive:
    return "E";
  case LineState::Modified:
    return "M";
  case LineState::Ward:
    return "W";
  }
  return "?";
}

CacheArray::CacheArray(const CacheGeometry &Geometry)
    : Geometry(Geometry),
      // Deliberately uninitialized: sets are placement-constructed on
      // first insert (see touchSet), so construction cost is independent
      // of the array's nominal capacity.
      Storage(new std::byte[static_cast<std::size_t>(Geometry.NumSets) *
                            Geometry.Assoc * sizeof(CacheLine)]),
      SetLive(Geometry.NumSets, 0), MruWay(Geometry.NumSets, 0) {}

CacheLine *CacheArray::touchSet(unsigned SetIndex) {
  CacheLine *Set = rawSet(SetIndex);
  if (!SetLive[SetIndex]) {
    for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
      ::new (static_cast<void *>(Set + Way)) CacheLine();
    SetLive[SetIndex] = 1;
  }
  return std::launder(Set);
}

CacheLine *CacheArray::lookup(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (Line)
    Line->LruStamp = NextStamp++;
  return Line;
}

CacheLine *CacheArray::probe(Addr BlockAddress) {
  assert(Geometry.blockAddr(BlockAddress) == BlockAddress &&
         "address must be block-aligned");
  unsigned SetIndex = Geometry.setIndex(BlockAddress);
  if (!SetLive[SetIndex])
    return nullptr; // Untouched set: trivially a miss.
  CacheLine *Set = liveSet(SetIndex);
  // Most probes re-find the way hit last time (consecutive accesses to a
  // hot block); checking it first is a pure host-side search-order
  // shortcut — the result and replacement behaviour are unchanged.
  const unsigned First = MruWay[SetIndex];
  if (Set[First].valid() && Set[First].Block == BlockAddress)
    return &Set[First];
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
    if (Way != First && Set[Way].valid() && Set[Way].Block == BlockAddress) {
      MruWay[SetIndex] = static_cast<std::uint8_t>(Way);
      return &Set[Way];
    }
  return nullptr;
}

const CacheLine *CacheArray::probe(Addr BlockAddress) const {
  return const_cast<CacheArray *>(this)->probe(BlockAddress);
}

std::optional<EvictedLine> CacheArray::insert(Addr BlockAddress,
                                              LineState State) {
  assert(State != LineState::Invalid && "cannot insert an invalid line");
  assert(!probe(BlockAddress) && "block already present");
  CacheLine *Set = touchSet(Geometry.setIndex(BlockAddress));

  CacheLine *Victim = &Set[0];
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way) {
    if (!Set[Way].valid()) {
      Victim = &Set[Way];
      break;
    }
    if (Set[Way].LruStamp < Victim->LruStamp)
      Victim = &Set[Way];
  }

  std::optional<EvictedLine> Displaced;
  if (Victim->valid())
    Displaced = EvictedLine{Victim->Block, Victim->State, Victim->Dirty};

  Victim->Block = BlockAddress;
  Victim->State = State;
  Victim->Dirty.clear();
  Victim->LruStamp = NextStamp++;
  MruWay[Geometry.setIndex(BlockAddress)] =
      static_cast<std::uint8_t>(Victim - Set);
  return Displaced;
}

std::optional<EvictedLine> CacheArray::invalidate(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (!Line)
    return std::nullopt;
  EvictedLine Old{Line->Block, Line->State, Line->Dirty};
  Line->State = LineState::Invalid;
  Line->Dirty.clear();
  return Old;
}

std::size_t CacheArray::validLineCount() const {
  std::size_t Count = 0;
  forEachValidLine([&Count](const CacheLine &) { ++Count; });
  return Count;
}
