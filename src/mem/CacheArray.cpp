//===- mem/CacheArray.cpp - LRU set-associative cache array ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/mem/CacheArray.h"

#include <cassert>

using namespace warden;

const char *warden::lineStateName(LineState State) {
  switch (State) {
  case LineState::Invalid:
    return "I";
  case LineState::Shared:
    return "S";
  case LineState::Exclusive:
    return "E";
  case LineState::Modified:
    return "M";
  case LineState::Ward:
    return "W";
  }
  return "?";
}

CacheArray::CacheArray(const CacheGeometry &Geometry)
    : Geometry(Geometry),
      Lines(static_cast<std::size_t>(Geometry.NumSets) * Geometry.Assoc) {}

CacheLine *CacheArray::lookup(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (Line)
    Line->LruStamp = NextStamp++;
  return Line;
}

CacheLine *CacheArray::probe(Addr BlockAddress) {
  assert(Geometry.blockAddr(BlockAddress) == BlockAddress &&
         "address must be block-aligned");
  CacheLine *Set = setBegin(Geometry.setIndex(BlockAddress));
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
    if (Set[Way].valid() && Set[Way].Block == BlockAddress)
      return &Set[Way];
  return nullptr;
}

const CacheLine *CacheArray::probe(Addr BlockAddress) const {
  return const_cast<CacheArray *>(this)->probe(BlockAddress);
}

std::optional<EvictedLine> CacheArray::insert(Addr BlockAddress,
                                              LineState State) {
  assert(State != LineState::Invalid && "cannot insert an invalid line");
  assert(!probe(BlockAddress) && "block already present");
  CacheLine *Set = setBegin(Geometry.setIndex(BlockAddress));

  CacheLine *Victim = &Set[0];
  for (unsigned Way = 0; Way < Geometry.Assoc; ++Way) {
    if (!Set[Way].valid()) {
      Victim = &Set[Way];
      break;
    }
    if (Set[Way].LruStamp < Victim->LruStamp)
      Victim = &Set[Way];
  }

  std::optional<EvictedLine> Displaced;
  if (Victim->valid())
    Displaced = EvictedLine{Victim->Block, Victim->State, Victim->Dirty};

  Victim->Block = BlockAddress;
  Victim->State = State;
  Victim->Dirty.clear();
  Victim->LruStamp = NextStamp++;
  return Displaced;
}

std::optional<EvictedLine> CacheArray::invalidate(Addr BlockAddress) {
  CacheLine *Line = probe(BlockAddress);
  if (!Line)
    return std::nullopt;
  EvictedLine Old{Line->Block, Line->State, Line->Dirty};
  Line->State = LineState::Invalid;
  Line->Dirty.clear();
  return Old;
}

std::size_t CacheArray::validLineCount() const {
  std::size_t Count = 0;
  for (const CacheLine &Line : Lines)
    if (Line.valid())
      ++Count;
  return Count;
}
