//===- mem/ReplacementPolicy.h - Pluggable cache replacement --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replacement-policy interface and registry. A CacheArray owns the
/// physical lines; a ReplacementPolicy owns the *eviction policy*: which
/// valid way to victimize on a conflicting fill, and what per-line /
/// per-set bookkeeping to update on hits, fills, and invalidations.
///
/// Four policies ship in-tree, registered under string ids:
///  * "lru"             — exact least-recently-used via a monotonic
///                        per-array stamp; byte-identical to the formerly
///                        hard-coded CacheArray behaviour and therefore the
///                        default everywhere (pinned baselines depend on
///                        it).
///  * "rrip"            — 2-bit SRRIP (static re-reference interval
///                        prediction): fills start "long", hits promote to
///                        "immediate", victims are aged to "distant".
///  * "perceptron"      — hashed-perceptron reuse prediction: each fill
///                        hashes address-shard and allocation-page features
///                        into small saturating integer weight tables and
///                        stores the feature signature in the line; hits
///                        train the signature toward reuse, evictions train
///                        it toward death; victim selection evicts the
///                        most-confidently-dead line. Integer-only
///                        fixed-point arithmetic keeps reports
///                        byte-identical at any --jobs/--intra-jobs.
///  * "perceptron-ward" — the perceptron with one feature slot rededicated
///                        to coherence-layer context (disjoint-region
///                        membership, WARD state, write intent) supplied by
///                        the controller through setRegionProbe() — the
///                        WARDen x learned-replacement cross.
///
/// State contract: per-line policy state lives in CacheLine::Repl (a
/// 64-bit policy-owned scratch word zeroed when a set is first formatted),
/// so lazily constructed sets need no parallel allocation; per-set state
/// (the probe-hint way in the base class, anything a custom policy adds)
/// is sized NumSets at construction. Policies may physically reorder lines
/// within a set from fill() (stack-ordered policies want way position to
/// carry meaning); CacheArray::probe therefore never trusts the hint
/// without re-checking the block address — see the regression test in
/// tests/MemTest.cpp.
///
/// Determinism contract: every hook must be a pure function of the access
/// sequence (no host time, no host pointers, no floating point). The
/// epoch-barriered engine replays the same lookup/fill sequence in every
/// mode, so any policy honouring this contract is byte-identical at any
/// --jobs/--intra-jobs value — the same argument DESIGN.md makes for lru.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_REPLACEMENTPOLICY_H
#define WARDEN_MEM_REPLACEMENTPOLICY_H

#include "src/mem/CacheGeometry.h"
#include "src/support/Types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace warden {

struct CacheLine;
class LruPolicy;

/// The canonical default policy id: exact LRU, byte-identical to the
/// pre-registry CacheArray behaviour.
inline constexpr std::string_view DefaultReplacementId = "lru";

/// Coherence-layer context probe handed to region-aware policies: true
/// when the block is inside a currently tracked disjoint-access region.
/// Installed by the CoherenceController after construction; only consulted
/// from fill-time feature extraction (the serial miss path), never from
/// epoch-worker hit paths.
using RegionMembershipProbe = std::function<bool(Addr)>;

/// Eviction policy for one CacheArray. Constructed through the registry
/// (makeReplacementPolicy) with the owning array's geometry; lives exactly
/// as long as the array.
class ReplacementPolicy {
public:
  explicit ReplacementPolicy(const CacheGeometry &Geometry);
  virtual ~ReplacementPolicy();

  ReplacementPolicy(const ReplacementPolicy &) = delete;
  ReplacementPolicy &operator=(const ReplacementPolicy &) = delete;

  /// --- Probe-hint ownership (moved here from CacheArray) ----------------
  /// The way that served the set's last hit, checked first by
  /// CacheArray::probe. A pure host-side search-order shortcut: the array
  /// re-verifies validity and the block address before trusting it, so a
  /// policy that reorders lines from fill() can leave it stale without
  /// ever producing a false hit.
  unsigned probeHint(unsigned SetIndex) const { return HintWay[SetIndex]; }
  void noteProbeHit(unsigned SetIndex, unsigned Way) {
    HintWay[SetIndex] = static_cast<std::uint8_t>(Way);
  }

  /// A lookup hit \p Set[\p Way]: update recency / train toward reuse.
  virtual void touch(CacheLine *Set, unsigned SetIndex, unsigned Way) = 0;

  /// Chooses the way to displace for a conflicting fill. Called only when
  /// every way of \p Set is valid (the array fills invalid ways first);
  /// must return a way index < Assoc. May mutate per-line state (SRRIP
  /// ages lines while searching).
  virtual unsigned victim(CacheLine *Set, unsigned SetIndex) = 0;

  /// \p Set[\p Way] (still holding the victim's contents) is about to be
  /// overwritten by a conflicting fill: train toward death. Not called for
  /// fills into invalid ways or for coherence invalidations.
  virtual void evicted(const CacheLine *Set, unsigned SetIndex, unsigned Way);

  /// \p Set[\p Way] now holds a freshly filled line (Block/State already
  /// written, Repl still carrying the previous tenant's state): initialize
  /// per-line state. The only hook allowed to reorder lines within the
  /// set; a policy that does so must keep any state it stores per-way
  /// consistent itself.
  virtual void fill(CacheLine *Set, unsigned SetIndex, unsigned Way) = 0;

  /// \p Set[\p Way] was invalidated by the coherence layer (not a capacity
  /// victim). Default: keep state untouched — an invalidation says nothing
  /// about reuse, and lru byte-identity depends on the stamp surviving.
  virtual void invalidated(CacheLine *Set, unsigned SetIndex, unsigned Way);

  /// Installs the coherence-layer region probe. Default: ignored; only
  /// "perceptron-ward" stores it.
  virtual void setRegionProbe(RegionMembershipProbe Probe);

  /// Non-null when this policy is the built-in LRU: CacheArray then stamps
  /// hits inline (the pre-registry hot path) instead of paying a virtual
  /// call per hit. Registering a custom policy under "lru" returns null
  /// here and takes the generic virtual path.
  virtual LruPolicy *asLru();

protected:
  CacheGeometry Geometry;
  /// Per-set probe hint, one byte per set (always < Assoc).
  std::vector<std::uint8_t> HintWay;
};

/// Exact LRU — the default policy, reproducing the formerly hard-coded
/// CacheArray algorithm verbatim: one monotonic stamp counter per array
/// starting at 1, stamp-on-hit and stamp-on-fill, victim = the
/// strictly-smallest stamp scanning from way 0. Final so CacheArray's
/// devirtualized fast path (asLru) is sound.
class LruPolicy final : public ReplacementPolicy {
public:
  explicit LruPolicy(const CacheGeometry &Geometry);

  void touch(CacheLine *Set, unsigned SetIndex, unsigned Way) override;
  unsigned victim(CacheLine *Set, unsigned SetIndex) override;
  void fill(CacheLine *Set, unsigned SetIndex, unsigned Way) override;
  LruPolicy *asLru() override;

  /// Monotonic recency stamp source, public so CacheArray's inline fast
  /// path can stamp without a virtual call. Starts at 1: a formatted but
  /// never-touched line keeps Repl == 0, strictly older than any stamp.
  std::uint64_t NextStamp = 1;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Factory signature for the replacement-policy registry.
using ReplacementFactory =
    std::function<std::unique_ptr<ReplacementPolicy>(const CacheGeometry &)>;

/// Registers (or, for an existing id, replaces) a replacement policy under
/// \p Id. The four built-ins are pre-registered; replacing one swaps the
/// implementation every subsequent CacheArray construction uses.
/// Thread-safe. Returns true if \p Id was new.
bool registerReplacementPolicy(std::string Id, ReplacementFactory Factory);

/// Instantiates the policy registered under \p Id for an array with
/// \p Geometry. Throws std::invalid_argument (listing the registered ids)
/// for unknown ids.
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(std::string_view Id, const CacheGeometry &Geometry);

/// True when \p Id names a registered policy — what MachineConfig
/// validation checks without constructing anything.
bool isRegisteredReplacementId(std::string_view Id);

/// The currently registered replacement-policy ids, in registration order
/// — what --replacement= error messages and `warden-verify --list` print.
std::vector<std::string> registeredReplacementIds();

/// Strictly parses a comma-separated replacement-id list (the harness
/// --replacement= syntax). Every malformation is rejected with a
/// descriptive message in \p Error: an empty list, an empty segment
/// (leading/trailing/doubled comma), an unknown id (the message lists
/// registeredReplacementIds()), or a duplicate id. Returns std::nullopt on
/// rejection.
std::optional<std::vector<std::string>>
parseReplacementList(std::string_view List, std::string &Error);

} // namespace warden

#endif // WARDEN_MEM_REPLACEMENTPOLICY_H
