//===- mem/CacheGeometry.h - Set-associative cache geometry ---*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometry (sets/ways/block size) of a set-associative cache and the
/// address arithmetic over it.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_CACHEGEOMETRY_H
#define WARDEN_MEM_CACHEGEOMETRY_H

#include "src/support/Types.h"

#include <cassert>

namespace warden {

/// Describes a set-associative cache and maps addresses to sets/tags.
struct CacheGeometry {
  unsigned NumSets = 0;
  unsigned Assoc = 0;
  unsigned BlockSize = 64;

  CacheGeometry() = default;

  CacheGeometry(std::uint64_t SizeBytes, unsigned Assoc, unsigned BlockSize)
      : Assoc(Assoc), BlockSize(BlockSize) {
    assert(isPowerOf2(BlockSize) && "block size must be a power of two");
    assert(SizeBytes % (static_cast<std::uint64_t>(Assoc) * BlockSize) == 0 &&
           "size must be divisible by way size");
    NumSets = static_cast<unsigned>(SizeBytes / Assoc / BlockSize);
    assert(NumSets > 0 && "cache must have at least one set");
    BlockShift = log2Exact(BlockSize);
    SetMask = isPowerOf2(NumSets) ? NumSets - 1 : 0;
  }

  std::uint64_t sizeBytes() const {
    return static_cast<std::uint64_t>(NumSets) * Assoc * BlockSize;
  }

  /// Block-aligned address containing \p Address.
  Addr blockAddr(Addr Address) const { return Address & ~(Addr(BlockSize) - 1); }

  /// Byte offset of \p Address within its block.
  unsigned blockOffset(Addr Address) const {
    return static_cast<unsigned>(Address & (BlockSize - 1));
  }

  /// Set index for a block-aligned address. Both divisors are loop
  /// invariants of every simulated access, so the common all-power-of-two
  /// geometry is reduced to a shift and a mask at construction time.
  unsigned setIndex(Addr BlockAddress) const {
    Addr BlockNumber = BlockAddress >> BlockShift;
    if (SetMask)
      return static_cast<unsigned>(BlockNumber & SetMask);
    return static_cast<unsigned>(BlockNumber % NumSets);
  }

  /// Precomputed log2(BlockSize); BlockSize is always a power of two.
  unsigned BlockShift = 6;
  /// NumSets - 1 when NumSets is a power of two, else 0 (modulo fallback).
  unsigned SetMask = 0;
};

} // namespace warden

#endif // WARDEN_MEM_CACHEGEOMETRY_H
