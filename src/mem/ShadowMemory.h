//===- mem/ShadowMemory.h - Per-byte shadow value tracking ----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-granularity shadow storage for cache blocks, used by the protocol
/// auditor's data-value invariant. Instead of carrying real program data
/// through the timing model, every simulated store is assigned a fresh
/// monotonically increasing version token; a shadow image of each memory
/// location (and of each private cache copy) then records which write it
/// currently holds. A load is correct when the version it observes matches
/// the last write the protocol licenses it to see.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_SHADOWMEMORY_H
#define WARDEN_MEM_SHADOWMEMORY_H

#include "src/mem/SectorMask.h"
#include "src/support/Types.h"

#include <array>
#include <cstdint>
#include <unordered_map>

namespace warden {

/// A write-version token. 0 means "never written".
using ShadowVersion = std::uint64_t;

/// Shadow image of one cache block: the version of the write each byte
/// currently holds.
struct ShadowBlock {
  std::array<ShadowVersion, SectorMask::MaxBytes> Bytes{};

  /// Sets bytes [Offset, Offset + Size) to \p Version.
  void write(unsigned Offset, unsigned Size, ShadowVersion Version) {
    for (unsigned I = 0; I < Size; ++I)
      Bytes[Offset + I] = Version;
  }

  /// Copies the bytes selected by \p Mask from \p From.
  void mergeMasked(const ShadowBlock &From, const SectorMask &Mask) {
    for (unsigned I = 0; I < SectorMask::MaxBytes; ++I)
      if (Mask.anyWritten(I, 1))
        Bytes[I] = From.Bytes[I];
  }
};

/// Shadow image of an address space (or of one cache's resident copies):
/// block-aligned address -> per-byte versions. Absent blocks read as
/// version 0 everywhere.
class ShadowMemory {
public:
  /// Returns the (mutable) image of \p Block, creating it zero-filled.
  ShadowBlock &get(Addr Block) { return Blocks[Block]; }

  /// Returns the image of \p Block, or nullptr if never materialised.
  const ShadowBlock *find(Addr Block) const {
    auto It = Blocks.find(Block);
    return It == Blocks.end() ? nullptr : &It->second;
  }
  ShadowBlock *find(Addr Block) {
    auto It = Blocks.find(Block);
    return It == Blocks.end() ? nullptr : &It->second;
  }

  /// Calls \p Fn(block address, image) for every materialised block, in
  /// unspecified (hash) order — callers needing a canonical order must
  /// sort the addresses themselves.
  template <typename FnT> void forEach(FnT Fn) const {
    for (const auto &[Block, Image] : Blocks)
      Fn(Block, Image);
  }

  bool contains(Addr Block) const { return Blocks.count(Block) != 0; }
  void erase(Addr Block) { Blocks.erase(Block); }
  void clear() { Blocks.clear(); }
  std::size_t size() const { return Blocks.size(); }

  /// Version of one byte; 0 if the block was never materialised.
  ShadowVersion byteVersion(Addr Block, unsigned Offset) const {
    const ShadowBlock *B = find(Block);
    return B ? B->Bytes[Offset] : 0;
  }

private:
  std::unordered_map<Addr, ShadowBlock> Blocks;
};

} // namespace warden

#endif // WARDEN_MEM_SHADOWMEMORY_H
