//===- mem/CacheArray.h - Set-associative cache array ---------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A protocol-agnostic set-associative cache array with pluggable
/// replacement (mem/ReplacementPolicy.h; "lru" by default, byte-identical
/// to the formerly hard-coded behaviour). Each line stores a local
/// coherence state, the WARD flag, and a byte-granularity dirty sector
/// mask (Section 6.1's sectored caches). The coherence controller layers
/// MESI/WARDen semantics on top.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_CACHEARRAY_H
#define WARDEN_MEM_CACHEARRAY_H

#include "src/mem/CacheGeometry.h"
#include "src/mem/SectorMask.h"
#include "src/support/Types.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

namespace warden {

class ReplacementPolicy;
class LruPolicy;

/// Local (per-cache) state of a line. Private caches use the full MESI
/// vocabulary plus Ward; the LLC data array only uses Invalid/Shared/
/// Modified (present-clean / present-dirty).
enum class LineState : std::uint8_t {
  Invalid,
  Shared,
  Exclusive,
  Modified,
  /// Held under an active WARD region: the core may read and write freely
  /// without generating coherence traffic; dirty bytes are tracked in the
  /// sector mask for reconciliation.
  Ward,
};

/// Returns a printable name for \p State.
const char *lineStateName(LineState State);

/// One cache line's bookkeeping.
struct CacheLine {
  Addr Block = 0;               ///< Block-aligned address; valid lines only.
  LineState State = LineState::Invalid;
  SectorMask Dirty;             ///< Bytes written while Modified/Ward.
  /// Replacement-policy scratch word, owned entirely by the array's
  /// ReplacementPolicy (the LRU recency stamp under "lru", the RRPV under
  /// "rrip", the packed feature signature + age under the perceptrons).
  /// Zeroed when the set is first formatted.
  std::uint64_t Repl = 0;

  bool valid() const { return State != LineState::Invalid; }
  bool dirty() const {
    return State == LineState::Modified ||
           (State == LineState::Ward && Dirty.any());
  }
};

/// A victim line returned from insert() when a valid line was displaced.
struct EvictedLine {
  Addr Block = 0;
  LineState State = LineState::Invalid;
  SectorMask Dirty;
};

/// Set-associative cache array with registry-selected replacement.
///
/// Sets are initialized lazily: construction allocates the backing store
/// uninitialized and only a first probe-with-intent (insert) formats a
/// set's lines. A full-size LLC slice is hundreds of thousands of lines,
/// of which a short simulation touches a small fraction, so eager
/// value-initialization dominated per-simulation host cost. Untouched sets
/// answer probes as misses without being formatted, and whole-array scans
/// (forEachValidLine, validLineCount) skip them entirely in set-index
/// order — identical iteration order to the former eager layout.
class CacheArray {
public:
  /// \p Policy names a registered replacement policy (see
  /// mem/ReplacementPolicy.h); unknown ids throw std::invalid_argument.
  explicit CacheArray(const CacheGeometry &Geometry,
                      std::string_view Policy = "lru");
  ~CacheArray();
  CacheArray(CacheArray &&) noexcept;
  CacheArray &operator=(CacheArray &&) noexcept;

  const CacheGeometry &geometry() const { return Geometry; }

  /// The replacement policy deciding this array's victims. Exposed so the
  /// controller can install coherence-context probes (perceptron-ward) and
  /// tests can drive policies directly.
  ReplacementPolicy &replacementPolicy() { return *Policy; }
  const ReplacementPolicy &replacementPolicy() const { return *Policy; }

  /// Finds the line holding \p BlockAddress, updating recency. Returns
  /// nullptr on miss. \p BlockAddress must be block-aligned.
  CacheLine *lookup(Addr BlockAddress);

  /// Finds the line holding \p BlockAddress without updating recency.
  CacheLine *probe(Addr BlockAddress);
  const CacheLine *probe(Addr BlockAddress) const;

  /// Allocates a line for \p BlockAddress in state \p State, evicting the
  /// policy's chosen valid line of the set if necessary. Returns the
  /// displaced line's data if one was displaced so the caller can write it
  /// back / notify the directory. \p BlockAddress must not already be
  /// present.
  std::optional<EvictedLine> insert(Addr BlockAddress, LineState State);

  /// Invalidates the line holding \p BlockAddress if present; returns its
  /// pre-invalidation contents, or std::nullopt if absent.
  std::optional<EvictedLine> invalidate(Addr BlockAddress);

  /// Number of currently valid lines.
  std::size_t validLineCount() const;

  /// Calls \p Fn(CacheLine&) for every valid line, in set-index order.
  /// Used only by tests and whole-cache statistics; protocol paths use
  /// per-block probes. Untouched sets are skipped without being formatted.
  template <typename FnT> void forEachValidLine(FnT Fn) {
    for (std::size_t SetIndex = 0; SetIndex < SetLive.size(); ++SetIndex) {
      if (!SetLive[SetIndex])
        continue;
      CacheLine *Set = liveSet(static_cast<unsigned>(SetIndex));
      for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
        if (Set[Way].valid())
          Fn(Set[Way]);
    }
  }
  template <typename FnT> void forEachValidLine(FnT Fn) const {
    for (std::size_t SetIndex = 0; SetIndex < SetLive.size(); ++SetIndex) {
      if (!SetLive[SetIndex])
        continue;
      const CacheLine *Set = liveSet(static_cast<unsigned>(SetIndex));
      for (unsigned Way = 0; Way < Geometry.Assoc; ++Way)
        if (Set[Way].valid())
          Fn(Set[Way]);
    }
  }

private:
  /// Raw (possibly unformatted) address of a set's first line.
  CacheLine *rawSet(unsigned SetIndex) {
    return reinterpret_cast<CacheLine *>(Storage.get()) +
           static_cast<std::size_t>(SetIndex) * Geometry.Assoc;
  }
  /// A set known to be live (SetLive[SetIndex] != 0).
  CacheLine *liveSet(unsigned SetIndex) {
    return std::launder(rawSet(SetIndex));
  }
  const CacheLine *liveSet(unsigned SetIndex) const {
    return std::launder(const_cast<CacheArray *>(this)->rawSet(SetIndex));
  }
  /// Formats \p SetIndex's lines on first use and returns the set.
  CacheLine *touchSet(unsigned SetIndex);

  CacheGeometry Geometry;
  /// Uninitialized backing store for NumSets * Assoc lines; sets become
  /// live (placement-constructed) on first insert. CacheLine is trivially
  /// destructible, so untouched storage needs no teardown.
  std::unique_ptr<std::byte[]> Storage;
  /// One byte per set: nonzero once the set's lines are constructed.
  std::vector<std::uint8_t> SetLive;
  /// The registry-constructed replacement policy (owns the per-set probe
  /// hint and any policy state beyond the lines' Repl words).
  std::unique_ptr<ReplacementPolicy> Policy;
  /// Non-null when Policy is the built-in LRU: hot paths then stamp
  /// inline instead of paying a virtual call per hit (see lookup/insert).
  LruPolicy *FastLru = nullptr;
};

static_assert(std::is_trivially_destructible_v<CacheLine>,
              "lazy set storage relies on trivial destruction");

} // namespace warden

#endif // WARDEN_MEM_CACHEARRAY_H
