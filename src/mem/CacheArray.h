//===- mem/CacheArray.h - LRU set-associative cache array -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A protocol-agnostic set-associative cache array with LRU replacement.
/// Each line stores a local coherence state, the WARD flag, and a
/// byte-granularity dirty sector mask (Section 6.1's sectored caches). The
/// coherence controller layers MESI/WARDen semantics on top.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MEM_CACHEARRAY_H
#define WARDEN_MEM_CACHEARRAY_H

#include "src/mem/CacheGeometry.h"
#include "src/mem/SectorMask.h"
#include "src/support/Types.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace warden {

/// Local (per-cache) state of a line. Private caches use the full MESI
/// vocabulary plus Ward; the LLC data array only uses Invalid/Shared/
/// Modified (present-clean / present-dirty).
enum class LineState : std::uint8_t {
  Invalid,
  Shared,
  Exclusive,
  Modified,
  /// Held under an active WARD region: the core may read and write freely
  /// without generating coherence traffic; dirty bytes are tracked in the
  /// sector mask for reconciliation.
  Ward,
};

/// Returns a printable name for \p State.
const char *lineStateName(LineState State);

/// One cache line's bookkeeping.
struct CacheLine {
  Addr Block = 0;               ///< Block-aligned address; valid lines only.
  LineState State = LineState::Invalid;
  SectorMask Dirty;             ///< Bytes written while Modified/Ward.
  std::uint64_t LruStamp = 0;   ///< Monotonic recency stamp.

  bool valid() const { return State != LineState::Invalid; }
  bool dirty() const {
    return State == LineState::Modified ||
           (State == LineState::Ward && Dirty.any());
  }
};

/// A victim line returned from insert() when a valid line was displaced.
struct EvictedLine {
  Addr Block = 0;
  LineState State = LineState::Invalid;
  SectorMask Dirty;
};

/// Set-associative, LRU-replaced cache array.
class CacheArray {
public:
  explicit CacheArray(const CacheGeometry &Geometry);

  const CacheGeometry &geometry() const { return Geometry; }

  /// Finds the line holding \p BlockAddress, updating recency. Returns
  /// nullptr on miss. \p BlockAddress must be block-aligned.
  CacheLine *lookup(Addr BlockAddress);

  /// Finds the line holding \p BlockAddress without updating recency.
  CacheLine *probe(Addr BlockAddress);
  const CacheLine *probe(Addr BlockAddress) const;

  /// Allocates a line for \p BlockAddress in state \p State, evicting the
  /// LRU valid line of the set if necessary. Returns the displaced line's
  /// data if one was displaced so the caller can write it back / notify the
  /// directory. \p BlockAddress must not already be present.
  std::optional<EvictedLine> insert(Addr BlockAddress, LineState State);

  /// Invalidates the line holding \p BlockAddress if present; returns its
  /// pre-invalidation contents, or std::nullopt if absent.
  std::optional<EvictedLine> invalidate(Addr BlockAddress);

  /// Number of currently valid lines.
  std::size_t validLineCount() const;

  /// Calls \p Fn(CacheLine&) for every valid line. Used only by tests and
  /// whole-cache statistics; protocol paths use per-block probes.
  template <typename FnT> void forEachValidLine(FnT Fn) {
    for (CacheLine &Line : Lines)
      if (Line.valid())
        Fn(Line);
  }
  template <typename FnT> void forEachValidLine(FnT Fn) const {
    for (const CacheLine &Line : Lines)
      if (Line.valid())
        Fn(Line);
  }

private:
  CacheLine *setBegin(unsigned SetIndex) {
    return &Lines[static_cast<std::size_t>(SetIndex) * Geometry.Assoc];
  }
  const CacheLine *setBegin(unsigned SetIndex) const {
    return &Lines[static_cast<std::size_t>(SetIndex) * Geometry.Assoc];
  }

  CacheGeometry Geometry;
  std::vector<CacheLine> Lines;
  std::uint64_t NextStamp = 1;
};

} // namespace warden

#endif // WARDEN_MEM_CACHEARRAY_H
