#!/usr/bin/env python3
"""Verify that event logs are byte-identical at any --jobs.

Usage:
    scripts/check_evlog_determinism.py FIG7_BINARY [SCALE]

Runs the Figure 7 suite twice at a tiny scale with --evlog enabled — once
with --jobs=1 and once with --jobs=4 — and byte-compares every produced
.evlog file. The event log assigns its global sequence numbers in the
(serial) simulation's emission order and merges its per-core shards by
that order, so the bytes on disk must never depend on how benchmark
simulations were scheduled across host threads.

Registered as a ctest (evlog_determinism); also usable standalone.
"""

import glob
import os
import subprocess
import sys
import tempfile


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: check_evlog_determinism.py FIG7_BINARY [SCALE]")
    binary = sys.argv[1]
    scale = sys.argv[2] if len(sys.argv) > 2 else "0.05"

    logs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for jobs in (1, 4):
            base = os.path.join(tmp, f"jobs{jobs}")
            subprocess.run(
                [binary, f"--scale={scale}", f"--evlog={base}",
                 f"--jobs={jobs}",
                 f"--json={os.path.join(tmp, f'jobs{jobs}.json')}"],
                check=True, stdout=subprocess.DEVNULL)
            produced = {}
            for path in glob.glob(f"{base}.*.evlog"):
                with open(path, "rb") as f:
                    produced[os.path.basename(path)[len(f"jobs{jobs}."):]] \
                        = f.read()
            logs[jobs] = produced

    if not logs[1]:
        sys.exit("FAIL: --evlog produced no .evlog files")
    if set(logs[1]) != set(logs[4]):
        sys.exit("FAIL: --jobs=1 and --jobs=4 produced different file sets: "
                 f"{sorted(logs[1])} vs {sorted(logs[4])}")
    for name in sorted(logs[1]):
        if logs[1][name] != logs[4][name]:
            sys.exit(f"FAIL: {name} differs between --jobs=1 and --jobs=4")

    print(f"OK: {len(logs[1])} event logs byte-identical at --jobs=1 and "
          f"--jobs=4 (scale {scale})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
