#!/usr/bin/env python3
"""Compare two warden-bench JSON reports with a tolerance verdict.

Usage:
    scripts/bench_diff.py BASELINE.json CANDIDATE.json [--tolerance 0.10]

Accepts all three report schemas — warden-bench-v1 (the original
two-protocol layout with top-level "mesi"/"warden" records per
benchmark), warden-bench-v2 (protocol-keyed "protocols"/"comparisons"
maps), and warden-bench-v3 (v2 plus a replacement-policy matrix) — and
normalizes each to the v1 shape before diffing, so a v3 candidate can be
checked against a pinned v1/v2 baseline and vice versa. v2/v3 reports
must contain mesi and warden runs to be comparable; extra protocols
(e.g. --protocol=...,sisd) are ignored by the diff.

Replacement matrix rows (v3): rows simulated under the default "lru"
policy keep the plain benchmark name as their diff key, so they compare
directly against pre-matrix baselines; rows under any other policy are
keyed "name@policy". The wider-candidate principle applies: rows present
in only one report are reported and skipped, never failed.

Compares, per benchmark present in both reports, the headline metrics
(MESI/WARDen makespans, speedup, invalidations + downgrades, energy) and
prints a row per comparison. A metric FAILS when its relative deviation
from the baseline exceeds the tolerance (absolute deviation for metrics
whose baseline is zero). Exit status: 0 when everything is within
tolerance, 1 otherwise, 2 on malformed input.

The simulator is deterministic, so on identical code the reports match
exactly; the tolerance exists so deliberate timing-model changes can be
reviewed (run, eyeball the diff table, regenerate the baseline with
scripts/bench.sh) rather than silently absorbed.

Host-side performance fields (host_seconds, sim_accesses_per_sec, and the
top-level "host" object) are IGNORED by default: they measure the
simulator's throughput on whatever machine produced the report, not the
simulated machine, so they vary run to run even on identical code. Pass
--check-perf to compare them too (against --tolerance); reports that
predate these fields are skipped gracefully, never failed.
"""

import argparse
import json
import sys


def normalize_benchmark(path, bench):
    """Maps one v2 benchmark record onto the v1 field layout in place."""
    protocols = bench.get("protocols", {})
    comparisons = bench.get("comparisons", {})
    for proto in ("mesi", "warden"):
        if proto not in protocols:
            sys.exit(f"error: {path}: benchmark {bench.get('name')!r} has "
                     f"no {proto!r} run; the diff needs both classic "
                     f"protocols (run with --protocol=mesi,warden[,...])")
        bench[proto] = protocols[proto]
    warden_cmp = comparisons.get("warden", {})
    for field in ("speedup", "interconnect_energy_savings",
                  "total_energy_savings", "ipc_improvement_pct",
                  "inv_down_avoided_per_kilo_instr",
                  "downgrade_share_of_reduction"):
        if field in warden_cmp:
            bench[field] = warden_cmp[field]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    schema = doc.get("schema")
    if schema in ("warden-bench-v2", "warden-bench-v3"):
        for bench in doc.get("benchmarks", []):
            normalize_benchmark(path, bench)
    elif schema != "warden-bench-v1":
        sys.exit(f"error: {path}: expected schema warden-bench-v1, "
                 f"warden-bench-v2, or warden-bench-v3, got {schema!r}")
    return doc


def diff_key(bench):
    """Diff key of one benchmark record: the plain name for lru (or
    pre-v3) rows, "name@policy" for other replacement-matrix rows."""
    name = bench["name"]
    replacement = bench.get("replacement", "lru")
    return name if replacement == "lru" else f"{name}@{replacement}"


# (label, extractor) pairs; extractors read one benchmark record.
METRICS = [
    ("mesi cycles", lambda b: b["mesi"]["makespan_cycles"]),
    ("warden cycles", lambda b: b["warden"]["makespan_cycles"]),
    ("speedup", lambda b: b["speedup"]),
    ("mesi inv+down", lambda b: b["mesi"]["invalidations"]
     + b["mesi"]["downgrades"]),
    ("warden inv+down", lambda b: b["warden"]["invalidations"]
     + b["warden"]["downgrades"]),
    ("total energy savings", lambda b: b["total_energy_savings"]),
]

# Per-protocol metrics compared for every protocol beyond the classic pair
# that appears in BOTH v2 reports (extra protocols present in only one
# report stay ignored, so a wider candidate never fails a narrower
# baseline). This is how baselines/BENCH_racoh.json pins the racoh
# numbers: when both reports carry a racoh run, its makespan, coherence
# work, and log-coherence counters are all diffed.
PROTO_METRICS = [
    ("cycles", lambda r: r["makespan_cycles"]),
    ("inv+down", lambda r: r["invalidations"] + r["downgrades"]),
]

# Racoh-only log-coherence forensics (absent fields are skipped so the
# diff tolerates reports produced before a counter existed).
RACOH_METRICS = [
    ("log publishes", "log_publishes"),
    ("log records pub", "log_records_published"),
    ("log records cons", "log_records_consumed"),
    ("log stalls", "log_backpressure_stalls"),
    ("log invalidations", "log_invalidations"),
    ("pre-inv avoided", "pre_invalidate_avoided"),
    ("cross-node hops", "cross_node_hops"),
    ("log queue peak", "log_queue_peak_occupancy"),
]

# Host-side engine throughput; compared only under --check-perf. These are
# wall-clock measurements of the simulator itself and are expected to move
# whenever the host, load, or --jobs setting changes.
PERF_METRICS = [
    ("host seconds", lambda b: b["host_seconds"]),
    ("sim accesses/sec", lambda b: b["sim_accesses_per_sec"]),
]


def deviation(base, cand):
    """Relative deviation, falling back to absolute when baseline is 0."""
    if base == 0:
        return abs(cand)
    return abs(cand - base) / abs(base)


def main():
    parser = argparse.ArgumentParser(
        description="diff two warden-bench-v1 reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="maximum relative deviation (default 0.10)")
    parser.add_argument("--check-perf", action="store_true",
                        help="also compare host_seconds and "
                             "sim_accesses_per_sec (ignored by default; "
                             "host-dependent)")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    base_by_name = {diff_key(b): b for b in base["benchmarks"]}
    cand_by_name = {diff_key(b): b for b in cand["benchmarks"]}

    if base.get("scale") != cand.get("scale"):
        print(f"note: scales differ (baseline {base.get('scale')}, "
              f"candidate {cand.get('scale')}); cycle counts will not be "
              f"comparable")

    common = [n for n in base_by_name if n in cand_by_name]
    missing = sorted(set(base_by_name) ^ set(cand_by_name))
    if not common:
        sys.exit("error: the reports share no benchmarks")

    width = max(len(n) for n in common) + 2
    failures = 0
    print(f"{'benchmark':{width}} {'metric':22} {'baseline':>14} "
          f"{'candidate':>14} {'delta':>8}  verdict")
    for name in common:
        def compare(label, b_val, c_val):
            nonlocal failures
            dev = deviation(b_val, c_val)
            ok = dev <= args.tolerance
            failures += not ok
            print(f"{name:{width}} {label:22} {b_val:14.4g} {c_val:14.4g} "
                  f"{dev:7.1%}  {'ok' if ok else 'FAIL'}")

        for label, get in METRICS:
            try:
                b_val = get(base_by_name[name])
                c_val = get(cand_by_name[name])
            except KeyError as key:
                sys.exit(f"error: {name}: missing field {key}")
            compare(label, b_val, c_val)

        # Protocols beyond the classic pair, when both reports have them.
        b_protos = base_by_name[name].get("protocols", {})
        c_protos = cand_by_name[name].get("protocols", {})
        for proto in sorted((set(b_protos) & set(c_protos)) -
                            {"mesi", "warden"}):
            b_run, c_run = b_protos[proto], c_protos[proto]
            for label, get in PROTO_METRICS:
                try:
                    b_val, c_val = get(b_run), get(c_run)
                except KeyError as key:
                    sys.exit(f"error: {name}/{proto}: missing field {key}")
                compare(f"{proto} {label}", b_val, c_val)
            if proto == "racoh":
                for label, field in RACOH_METRICS:
                    if field not in b_run or field not in c_run:
                        continue
                    compare(label, b_run[field], c_run[field])
        if args.check_perf:
            for label, get in PERF_METRICS:
                try:
                    b_val = get(base_by_name[name])
                    c_val = get(cand_by_name[name])
                except KeyError:
                    # One of the reports predates the host fields; that is
                    # an old report, not a regression.
                    print(f"{name:{width}} {label:22} "
                          f"{'(field absent; skipped)':>38}")
                    continue
                dev = deviation(b_val, c_val)
                ok = dev <= args.tolerance
                failures += not ok
                print(f"{name:{width}} {label:22} {b_val:14.4g} "
                      f"{c_val:14.4g} {dev:7.1%}  "
                      f"{'ok' if ok else 'FAIL'}")

    for name in missing:
        print(f"{name:{width}} only in one report (skipped)")

    verdict = "PASS" if failures == 0 else f"FAIL ({failures} deviations)"
    print(f"\n{verdict}: tolerance {args.tolerance:.0%}, "
          f"{len(common)} benchmarks compared")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
