#!/usr/bin/env python3
"""Regression-pin the classic two-protocol numbers to the repo baseline.

Usage:
    scripts/check_baseline_identity.py FIG7_BINARY BASELINE.json
                                       [PROTOCOLS] [REPLACEMENTS]

Runs the Figure 7 suite at the baseline's recorded scale with the given
--protocol list (default mesi,warden,sisd — deliberately wider than the
baseline, to prove that simulating extra protocols never perturbs the
classic pair) and diffs the report against BASELINE.json with
scripts/bench_diff.py at zero tolerance. The simulator is deterministic,
so any deviation means the refactor changed MESI or WARDen behaviour —
exactly what the pluggable-backend layer promises not to do.

An optional fourth REPLACEMENTS argument passes --replacement= to run
the benchmark x replacement matrix; lru rows keep their plain diff keys,
so a wider matrix candidate still pins against a pre-matrix baseline
(and against a pinned matrix baseline like
baselines/BENCH_replacement.json it pins every policy's rows).

Registered as a ctest (baseline_identity); also usable standalone.
"""

import json
import os
import subprocess
import sys
import tempfile


def main():
    if len(sys.argv) < 3:
        sys.exit("usage: check_baseline_identity.py FIG7_BINARY "
                 "BASELINE.json [PROTOCOLS] [REPLACEMENTS]")
    binary, baseline = sys.argv[1], sys.argv[2]
    protocols = sys.argv[3] if len(sys.argv) > 3 else "mesi,warden,sisd"
    replacements = sys.argv[4] if len(sys.argv) > 4 else ""

    with open(baseline) as f:
        scale = json.load(f).get("scale", 0.25)

    diff = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "bench_diff.py")
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "candidate.json")
        cmd = [binary, f"--scale={scale}", f"--protocol={protocols}",
               "--jobs=2", "--profile", f"--json={out}"]
        if replacements:
            cmd.append(f"--replacement={replacements}")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        result = subprocess.run(
            [sys.executable, diff, baseline, out, "--tolerance", "0"])
    if result.returncode != 0:
        sys.exit("FAIL: candidate report deviates from the pinned baseline "
                 "(see diff table above)")
    what = protocols + (f" x {replacements}" if replacements else "")
    print(f"OK: {what} run matches {baseline} at zero tolerance "
          f"(scale {scale})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
