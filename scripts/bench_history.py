#!/usr/bin/env python3
"""Track simulator throughput across CI runs and flag regressions.

Usage:
    scripts/bench_history.py REPORT.json HISTORY.jsonl [options]
    scripts/bench_history.py --self-test

Reads a warden-bench-v2 report's host-side performance fields (the
per-benchmark host_seconds / sim_accesses_per_sec pairs and the report's
sim_accesses_per_sec_geomean), appends one JSON line to HISTORY.jsonl,
and compares the run's aggregate throughput against the trailing median
of the previous entries. A run is a REGRESSION when its throughput falls
more than --max-regression (default 0.25) below that median. Two
aggregates are gated independently: the access-weighted total (dominated
by the longest benchmarks) and the per-benchmark geomean (equal weight,
so a hot-path regression that only bites the short benchmarks still
trips it). Histories that predate the geomean field gate on the total
only.

The verdict is advisory by default (prints a warning, exits 0) because
host throughput is noisy on shared CI runners and a PR should not go red
over a slow machine; pass --strict (used on main) to turn a regression
into exit 1. Fewer than --min-history prior entries (default 3) means no
gate at all — the history is still being seeded.

History lines are self-contained JSON objects:
    {"commit": ..., "throughput": ..., "geomean": ..., "host_seconds": ...,
     "benchmarks": {name: sim_accesses_per_sec, ...}}

Exit status: 0 OK/advisory, 1 strict regression, 2 malformed input.
"""

import argparse
import json
import math
import os
import statistics
import sys


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read report {path}: {err}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        sys.exit(f"error: {path}: no benchmarks array (is this a "
                 "warden-bench report?)")
    rates, total_seconds, total_accesses = {}, 0.0, 0.0
    for bench in benches:
        name = bench.get("name", "?")
        rate = bench.get("sim_accesses_per_sec")
        seconds = bench.get("host_seconds")
        if not isinstance(rate, (int, float)) or \
           not isinstance(seconds, (int, float)):
            sys.exit(f"error: {path}: benchmark {name!r} lacks "
                     "host_seconds/sim_accesses_per_sec (rerun with a "
                     "harness that emits them)")
        rates[name] = rate
        total_seconds += seconds
        total_accesses += rate * seconds
    if total_seconds <= 0:
        sys.exit(f"error: {path}: zero total host_seconds")
    # Prefer the harness-computed geomean (host object); recompute from the
    # per-benchmark rates for reports that predate the host field.
    geomean = doc.get("host", {}).get("sim_accesses_per_sec_geomean")
    if not isinstance(geomean, (int, float)) or geomean <= 0:
        logs = [math.log(r) for r in rates.values() if r > 0]
        geomean = math.exp(sum(logs) / len(logs)) if logs else 0.0
    return {
        "commit": os.environ.get("GITHUB_SHA", ""),
        "throughput": total_accesses / total_seconds,
        "geomean": geomean,
        "host_seconds": total_seconds,
        "benchmarks": rates,
    }


def load_history(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                print(f"note: {path}:{lineno}: unparseable line skipped")
                continue
            if isinstance(entry.get("throughput"), (int, float)):
                entries.append(entry)
    return entries


def verdict(history, current, max_regression, min_history, window,
            key="throughput", label="throughput"):
    """Returns (regressed, message) for `current` against `history`.

    Gates on `key`; history entries lacking the key (older schema) are
    skipped, so a freshly introduced aggregate re-seeds its own gate.
    """
    tail = [e[key] for e in history[-window:]
            if isinstance(e.get(key), (int, float))]
    if len(tail) < min_history:
        return False, (f"{label}: history has {len(tail)} prior run(s) "
                       f"(<{min_history}); seeding, no gate")
    median = statistics.median(tail)
    floor = median * (1.0 - max_regression)
    ratio = current / median if median > 0 else float("inf")
    detail = (f"{label} {current:,.0f} acc/s vs trailing median "
              f"{median:,.0f} over {len(tail)} runs ({ratio:.2%})")
    if current < floor:
        return True, f"REGRESSION: {detail}, below the {floor:,.0f} floor"
    return False, f"OK: {detail}"


def self_test():
    base = [{"throughput": t} for t in (100.0, 104.0, 96.0, 102.0, 98.0)]
    # Within the window: no regression.
    regressed, _ = verdict(base, 90.0, 0.25, 3, 20)
    assert not regressed, "90 vs median 100 is inside the 25% window"
    # Below the floor: regression.
    regressed, msg = verdict(base, 70.0, 0.25, 3, 20)
    assert regressed, "70 vs median 100 must trip the 25% gate"
    assert "REGRESSION" in msg
    # Too little history: never gates.
    regressed, _ = verdict(base[:2], 1.0, 0.25, 3, 20)
    assert not regressed, "two entries must not gate"
    # The window is trailing: old slow runs roll out of the median.
    slow_then_fast = [{"throughput": t} for t in (10.0, 10.0, 10.0,
                                                  100.0, 100.0, 100.0)]
    regressed, _ = verdict(slow_then_fast, 60.0, 0.25, 3, 3)
    assert regressed, "median over the last 3 (fast) runs must gate 60"
    # The geomean gate skips pre-geomean history lines: two schema-less
    # entries plus one with the field is below min_history, so no gate.
    mixed = base[:2] + [{"throughput": 100.0, "geomean": 50.0}]
    regressed, _ = verdict(mixed, 1.0, 0.25, 3, 20, key="geomean",
                           label="geomean")
    assert not regressed, "one geomean-bearing entry must not gate"
    # With enough geomean-bearing entries it gates independently of the
    # (healthy) total throughput.
    full = [{"throughput": 100.0, "geomean": g} for g in (50.0, 52.0, 48.0)]
    regressed, msg = verdict(full, 20.0, 0.25, 3, 20, key="geomean",
                             label="geomean")
    assert regressed and "geomean" in msg, \
        "20 vs geomean median 50 must trip the gate"
    print("bench_history self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="append a bench report to a throughput history and "
                    "flag regressions")
    parser.add_argument("report", nargs="?", help="warden-bench JSON report")
    parser.add_argument("history", nargs="?",
                        help="JSONL history file (created if absent)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional drop below the trailing median "
                             "that counts as a regression (default 0.25)")
    parser.add_argument("--min-history", type=int, default=3,
                        help="prior entries required before gating "
                             "(default 3)")
    parser.add_argument("--window", type=int, default=20,
                        help="trailing entries the median is taken over "
                             "(default 20)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression (main); default is "
                             "advisory (PRs)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate-logic checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.report or not args.history:
        parser.error("REPORT and HISTORY are required (or --self-test)")

    entry = load_report(args.report)
    history = load_history(args.history)
    regressed = False
    for key, label in (("throughput", "throughput"),
                       ("geomean", "geomean")):
        bad, message = verdict(history, entry[key], args.max_regression,
                               args.min_history, args.window,
                               key=key, label=label)
        regressed = regressed or bad
        print(f"bench_history: {message}")
    with open(args.history, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"bench_history: appended run {len(history) + 1} to "
          f"{args.history}")
    if regressed and args.strict:
        return 1
    if regressed:
        print("bench_history: advisory mode — not failing the build")
    return 0


if __name__ == "__main__":
    sys.exit(main())
