#!/usr/bin/env python3
"""Verify that the parallel simulation engine is deterministic.

Usage:
    scripts/check_jobs_determinism.py FIG7_BINARY [SCALE]

Runs the Figure 7 suite twice at a tiny scale — once with --jobs=1 and
once with --jobs=4 — and asserts the two JSON reports are byte-identical
after removing the host-timing fields (the top-level "host" object and the
per-benchmark host_seconds / sim_accesses_per_sec members), which measure
wall-clock and legitimately differ. Everything simulated — cycles, energy,
audit verdicts, profiles — must match exactly: each parallel job owns its
whole simulated machine, so scheduling must never leak into results.

Registered as a ctest (jobs_determinism); also usable standalone.
"""

import json
import os
import subprocess
import sys
import tempfile


def stripped(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("host", None)
    for bench in doc.get("benchmarks", []):
        bench.pop("host_seconds", None)
        bench.pop("sim_accesses_per_sec", None)
    return json.dumps(doc, sort_keys=True, indent=1)


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: check_jobs_determinism.py FIG7_BINARY [SCALE]")
    binary = sys.argv[1]
    scale = sys.argv[2] if len(sys.argv) > 2 else "0.05"

    reports = {}
    with tempfile.TemporaryDirectory() as tmp:
        for jobs in (1, 4):
            out = os.path.join(tmp, f"jobs{jobs}.json")
            subprocess.run(
                [binary, f"--scale={scale}", "--profile", "--audit",
                 f"--jobs={jobs}", f"--json={out}"],
                check=True, stdout=subprocess.DEVNULL)
            reports[jobs] = stripped(out)

    if reports[1] != reports[4]:
        a = reports[1].splitlines()
        b = reports[4].splitlines()
        for i, (la, lb) in enumerate(zip(a, b)):
            if la != lb:
                print(f"first difference at stripped-JSON line {i + 1}:")
                print(f"  --jobs=1: {la.strip()}")
                print(f"  --jobs=4: {lb.strip()}")
                break
        sys.exit("FAIL: --jobs=4 report differs from --jobs=1 "
                 "(modulo host-timing fields)")

    print(f"OK: --jobs=1 and --jobs=4 reports identical at scale {scale} "
          f"(host-timing fields excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
