#!/usr/bin/env python3
"""Verify that the parallel simulation engines are deterministic.

Usage:
    scripts/check_jobs_determinism.py BINARY [SCALE] [--mode=jobs|intra]
                                      [--FLAG[=VALUE]...]

Any option other than --mode= is passed through to the harness binary on
every run, so the determinism contract can be checked under specific
configurations — e.g. --replacement=perceptron asserts the learned
eviction policy trains identically at any worker count.

Modes:

  jobs (default)
    Runs the suite twice — --jobs=1 vs --jobs=4 (suite-level parallelism:
    whole benchmarks fan out across a pool) with --profile --audit — and
    asserts the two JSON reports are byte-identical after removing the
    host-timing fields. Each parallel job owns its whole simulated
    machine, so scheduling must never leak into results.

  intra
    Same contract for intra-run parallelism (--intra-jobs: one run's
    timing simulation sharded across epoch workers). Three comparisons,
    all at --intra-jobs=1 vs --intra-jobs=4:
      1. plain JSON reports — this is the load-bearing check: without
         observability sinks the epoch-barriered engine is active, so
         worker count must not change a single simulated number;
      2. JSON reports with --profile --audit — observability and audit
         attach per-access sinks, which forces the reference serial
         engine; the flag must then be completely inert;
      3. event-log bytes (--evlog) — streamed coherence event logs must
         be byte-identical, not merely equivalent.

In every comparison only host wall-clock fields (the top-level "host"
object and per-benchmark host_seconds / sim_accesses_per_sec) may differ.

Registered as ctests (jobs_determinism, intra_jobs_determinism,
intra_jobs_determinism_multinode); also usable standalone.
"""

import json
import os
import subprocess
import sys
import tempfile


def stripped(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("host", None)
    for bench in doc.get("benchmarks", []):
        bench.pop("host_seconds", None)
        bench.pop("sim_accesses_per_sec", None)
    return json.dumps(doc, sort_keys=True, indent=1)


def run(binary, out, extra):
    subprocess.run([binary, f"--json={out}"] + extra,
                   check=True, stdout=subprocess.DEVNULL)


def diff_reports(a, b, label_a, label_b):
    if a == b:
        return True
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines())):
        if la != lb:
            print(f"first difference at stripped-JSON line {i + 1}:")
            print(f"  {label_a}: {la.strip()}")
            print(f"  {label_b}: {lb.strip()}")
            break
    return False


def compare_json(binary, scale, flag, extra, what, passthrough):
    with tempfile.TemporaryDirectory() as tmp:
        reports = {}
        for n in (1, 4):
            out = os.path.join(tmp, f"n{n}.json")
            run(binary, out, [f"--scale={scale}", f"--{flag}={n}"]
                + passthrough + extra)
            reports[n] = stripped(out)
    if not diff_reports(reports[1], reports[4],
                        f"--{flag}=1", f"--{flag}=4"):
        sys.exit(f"FAIL: --{flag}=4 {what} report differs from --{flag}=1 "
                 "(modulo host-timing fields)")
    print(f"OK: {what} reports identical at --{flag} 1 vs 4, scale {scale}")


def compare_evlog(binary, scale, flag, passthrough):
    logs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for n in (1, 4):
            sub = os.path.join(tmp, f"n{n}")
            os.mkdir(sub)
            out = os.path.join(sub, "report.json")
            run(binary, out, [f"--scale={scale}", f"--{flag}={n}",
                              f"--evlog={os.path.join(sub, 'ev')}"]
                + passthrough)
            blobs = {}
            for root, _, files in os.walk(sub):
                for name in sorted(files):
                    if name.endswith(".evlog"):
                        with open(os.path.join(root, name), "rb") as f:
                            blobs[name] = f.read()
            logs[n] = blobs
    if sorted(logs[1]) != sorted(logs[4]):
        sys.exit(f"FAIL: --{flag} 1 vs 4 produced different evlog file "
                 f"sets: {sorted(logs[1])} vs {sorted(logs[4])}")
    for name in sorted(logs[1]):
        if logs[1][name] != logs[4][name]:
            sys.exit(f"FAIL: evlog {name} bytes differ between "
                     f"--{flag}=1 and --{flag}=4")
    print(f"OK: {len(logs[1])} evlog files byte-identical at "
          f"--{flag} 1 vs 4, scale {scale}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    modes = [a.split("=", 1)[1] for a in sys.argv[1:]
             if a.startswith("--mode=")]
    mode = modes[-1] if modes else "jobs"
    # Everything else flagged is forwarded to the binary verbatim
    # (e.g. --replacement=perceptron, --protocol=mesi).
    passthrough = [a for a in sys.argv[1:]
                   if a.startswith("--") and not a.startswith("--mode=")]
    if not args:
        sys.exit("usage: check_jobs_determinism.py BINARY [SCALE] "
                 "[--mode=jobs|intra] [--FLAG[=VALUE]...]")
    binary = args[0]
    scale = args[1] if len(args) > 1 else "0.05"

    if mode == "jobs":
        compare_json(binary, scale, "jobs", ["--profile", "--audit"],
                     "profile+audit", passthrough)
    elif mode == "intra":
        compare_json(binary, scale, "intra-jobs", [], "engine", passthrough)
        compare_json(binary, scale, "intra-jobs", ["--profile", "--audit"],
                     "profile+audit", passthrough)
        compare_evlog(binary, scale, "intra-jobs", passthrough)
    else:
        sys.exit(f"unknown --mode={mode}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
