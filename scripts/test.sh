#!/usr/bin/env bash
# Default verification entry point: configure, build, run the unit suite,
# then the audited PBBS acceptance runs (`ctest -L audit`).
#
#   scripts/test.sh             fast RelWithDebInfo build + both suites
#   scripts/test.sh --sanitize  same, under ASan + UBSan (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=default
if [[ "${1:-}" == "--sanitize" ]]; then
  PRESET=sanitize
  shift
fi
if [[ $# -gt 0 ]]; then
  echo "usage: scripts/test.sh [--sanitize]" >&2
  exit 2
fi

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "$(nproc)"

# Unit suite first (everything not labeled audit), then the audit label
# explicitly so the heavyweight acceptance gate cannot be skipped silently.
BUILD_DIR=build
[[ "$PRESET" == sanitize ]] && BUILD_DIR=build-sanitize
ctest --test-dir "$BUILD_DIR" -LE audit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L audit --output-on-failure -j "$(nproc)"
