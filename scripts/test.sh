#!/usr/bin/env bash
# Default verification entry point: configure, build, run the unit suite,
# then the audited PBBS acceptance runs (`ctest -L audit`).
#
#   scripts/test.sh             fast RelWithDebInfo build + both suites
#   scripts/test.sh --sanitize  same, under ASan + UBSan (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=default
if [[ "${1:-}" == "--sanitize" ]]; then
  PRESET=sanitize
  shift
fi
if [[ $# -gt 0 ]]; then
  echo "usage: scripts/test.sh [--sanitize]" >&2
  exit 2
fi

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "$(nproc)"

# Unit suite first (everything not labeled audit), then the audit label
# explicitly so the heavyweight acceptance gate cannot be skipped silently.
BUILD_DIR=build
[[ "$PRESET" == sanitize ]] && BUILD_DIR=build-sanitize
ctest --test-dir "$BUILD_DIR" -LE audit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L audit --output-on-failure -j "$(nproc)"

# Benchmark report smoke test (default preset only: the sanitize build
# reuses the binaries it just verified). Produces BENCH_suite.json and
# checks that the emitted document actually parses.
if [[ "$PRESET" == default ]]; then
  scripts/bench.sh BENCH_suite.json
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool BENCH_suite.json >/dev/null
    echo "BENCH_suite.json parses as valid JSON"
    # The report must carry a per-protocol run record, a comparison entry
    # for every non-baseline protocol, and a well-formed --profile section
    # (schema warden-prof-v1) for each simulated protocol.
    python3 - <<'EOF'
import json
doc = json.load(open("BENCH_suite.json"))
assert doc["schema"] == "warden-bench-v3", doc["schema"]
protocols = doc["protocols"]
baseline = doc["baseline"]
assert baseline in protocols, (baseline, protocols)
replacements = doc["replacements"]
assert replacements == ["lru"], replacements
for bench in doc["benchmarks"]:
    assert bench["replacement"] in replacements, bench["name"]
    assert set(bench["protocols"]) == set(protocols), bench["name"]
    assert set(bench["comparisons"]) == set(protocols) - {baseline}, \
        bench["name"]
    for cmp in bench["comparisons"].values():
        assert cmp["speedup"] > 0, bench["name"]
    profile = bench["profile"]
    for proto in protocols:
        sharing = profile[proto]["sharing"]
        assert sharing["schema"] == "warden-prof-v1", (bench["name"], proto)
        assert isinstance(sharing["lines"], list)
        assert isinstance(sharing["sites"], list)
        assert profile[proto]["cpi"]["enabled"]
print("report validates (warden-bench-v3, profiles warden-prof-v1)")
EOF
    # The classic two-protocol numbers must be byte-identical to the
    # pinned baseline: the pluggable-backend layer is a refactor, not a
    # timing-model change.
    python3 scripts/bench_diff.py baselines/BENCH_suite.json \
      BENCH_suite.json --tolerance 0
  fi
fi
