#!/usr/bin/env bash
# Machine-readable benchmark report: builds the Figure 7 harness and runs
# the full PBBS suite at a reduced scale, writing a warden-bench-v2 JSON
# document (schema documented in README.md) with the coherence-forensics
# profile section (per-line sharing profiles, allocation-site attribution,
# CPI stacks) for every simulated protocol.
#
#   scripts/bench.sh [OUTPUT.json]       default output: BENCH_suite.json
#
# Environment:
#   WARDEN_BENCH_SCALE      problem-size multiplier (default 0.25; use 1.0
#                           for the paper-scale run, ~5s)
#   WARDEN_BENCH_JOBS       host threads for the simulation fan-out
#                           (default 1; results are byte-identical at any
#                           value modulo the host-timing fields)
#   WARDEN_BENCH_INTRA_JOBS epoch workers sharding each single run's
#                           timing simulation (default 1; same
#                           byte-identity contract as WARDEN_BENCH_JOBS)
#   WARDEN_BENCH_PROTOCOLS  comma-separated protocol ids passed through as
#                           --protocol= (default mesi,warden; e.g.
#                           mesi,warden,sisd for the three-way comparison)
#
# Compare two reports with scripts/bench_diff.py.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_suite.json}"
SCALE="${WARDEN_BENCH_SCALE:-0.25}"
JOBS="${WARDEN_BENCH_JOBS:-1}"
INTRA_JOBS="${WARDEN_BENCH_INTRA_JOBS:-1}"
PROTOCOLS="${WARDEN_BENCH_PROTOCOLS:-mesi,warden}"

cmake --preset default
cmake --build --preset default -j "$(nproc)" --target fig7_single_socket

build/bench/fig7_single_socket --scale="$SCALE" --jobs="$JOBS" \
  --intra-jobs="$INTRA_JOBS" \
  --protocol="$PROTOCOLS" --json="$OUT" --profile
echo "bench report written to $OUT (scale $SCALE, jobs $JOBS," \
  "intra-jobs $INTRA_JOBS, protocols $PROTOCOLS)"
