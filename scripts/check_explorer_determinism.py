#!/usr/bin/env python3
"""Verify that the model-checking explorer is deterministic across --jobs.

Usage:
    scripts/check_explorer_determinism.py WARDEN_VERIFY_BINARY

Runs the full warden-verify suite (litmus + explore, all registered
protocols) once with --jobs=1 and once with --jobs=4 and asserts the two
JSON reports are BYTE-identical — no field stripping at all: the report
deliberately carries no host, timing, or jobs information, and the
explorer merges its per-root partitions in a fixed order, so parallelism
must never be observable in the results.

Registered as a ctest (explorer_determinism); also usable standalone.
"""

import json
import os
import subprocess
import sys
import tempfile


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: check_explorer_determinism.py WARDEN_VERIFY_BINARY")
    binary = sys.argv[1]

    reports = {}
    with tempfile.TemporaryDirectory() as tmp:
        for jobs in (1, 4):
            out = os.path.join(tmp, f"jobs{jobs}.json")
            subprocess.run(
                [binary, f"--jobs={jobs}", f"--json={out}"],
                check=True, stdout=subprocess.DEVNULL)
            with open(out, "rb") as f:
                reports[jobs] = f.read()

    # The report must also be well-formed JSON and must say it passed.
    doc = json.loads(reports[1])
    if not doc.get("passed"):
        sys.exit("FAIL: warden-verify reported verification failures")

    if reports[1] != reports[4]:
        a = reports[1].decode(errors="replace").splitlines()
        b = reports[4].decode(errors="replace").splitlines()
        for i, (la, lb) in enumerate(zip(a, b)):
            if la != lb:
                print(f"first difference at line {i + 1}:")
                print(f"  --jobs=1: {la.strip()}")
                print(f"  --jobs=4: {lb.strip()}")
                break
        sys.exit("FAIL: --jobs=4 report differs byte-for-byte from --jobs=1")

    protocols = [p["protocol"] for p in doc.get("protocols", [])]
    print(f"OK: explorer reports byte-identical at --jobs=1 and --jobs=4 "
          f"(protocols: {', '.join(protocols)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
