//===- tools/warden_verify.cpp - Model-checking CLI harness ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// warden-verify: exhaustive model checking and litmus testing for the
/// registered protocol backends, from the command line.
///
///   warden-verify                           # full suite, all protocols
///   warden-verify --protocol=sisd --mode=litmus
///   warden-verify --mutate=skip-acquire-invalidation --protocol=sisd
///   warden-verify --jobs=4 --json=verify.json
///
/// Modes: "litmus" runs the consistency litmus suite (verify/Litmus.h)
/// against each backend's declared model; "explore" exhaustively checks
/// the invariant set over a fixed battery of small racy programs; "all"
/// (default) runs both.
///
/// With --mutate=<name> the named deliberate protocol bug is injected and
/// the expectation inverts: the run passes (exit 0) only when the checker
/// *catches* the bug and produces a minimal counterexample — the
/// regression harness for the verification layer itself.
///
/// The JSON report is fully deterministic: byte-identical across --jobs
/// values and across runs (no timestamps, hosts, or durations).
///
/// Exit codes: 0 verification passed, 1 verification failed, 2 usage.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/mem/ReplacementPolicy.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/JobPool.h"
#include "src/support/Json.h"
#include "src/support/Strings.h"
#include "src/verify/Litmus.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace warden;

namespace {

struct VerifyOptions {
  std::vector<ProtocolKind> Protocols;
  std::string Mode = "all";
  unsigned Jobs = 1;
  std::uint64_t MaxStates = 1 << 18;
  ProtocolMutation Mutation = ProtocolMutation::None;
  std::string JsonPath;
  std::string EvlogBase;
  bool List = false;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: warden-verify [options]\n"
      "  --protocol=<id,...>  protocols to verify (default: all registered)\n"
      "  --mode=<m>           all | litmus | explore (default: all)\n"
      "  --jobs=<n>           worker threads for the exploration (default 1)\n"
      "  --max-states=<n>     canonical-state budget per search root\n"
      "  --mutate=<name>      inject a deliberate protocol bug; the run then\n"
      "                       passes only if the checker catches it\n"
      "  --json=<path>        write the deterministic JSON report\n"
      "  --evlog=<base>       additionally capture a streaming event log of a\n"
      "                       small deterministic workload per protocol, to\n"
      "                       <base>.<protocol>.evlog (query with warden-stat)\n"
      "  --list               list protocols, replacement policies, litmus\n"
      "                       patterns, and mutations\n");
}

bool parseUnsigned(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty())
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<std::uint64_t>(C - '0');
  }
  return true;
}

std::optional<ProtocolMutation> parseMutation(const std::string &Name) {
  if (Name == mutationName(ProtocolMutation::None))
    return ProtocolMutation::None;
  std::size_t Count = 0;
  const ProtocolMutation *Mutations = allProtocolMutations(Count);
  for (std::size_t I = 0; I < Count; ++I)
    if (Name == mutationName(Mutations[I]))
      return Mutations[I];
  return std::nullopt;
}

/// Comma-separated names of every deliberate mutation, for diagnostics.
std::string knownMutations() {
  std::string Known;
  std::size_t Count = 0;
  const ProtocolMutation *Mutations = allProtocolMutations(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    if (!Known.empty())
      Known += ", ";
    Known += mutationName(Mutations[I]);
  }
  return Known;
}

/// The explore-mode battery: small racy programs stressing every backend
/// surface (plain sharing, synchronization, WARD regions). Each is
/// exhaustively interleaved with the full invariant sweep at every step.
std::vector<VerifyProgram> explorePrograms() {
  constexpr Addr X = 0x40, Y = 0x80;
  auto Ld = [](Addr A, bool Obs = false) {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::Load;
    Op.Address = A;
    Op.Observe = Obs;
    return Op;
  };
  auto St = [](Addr A) {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::Store;
    Op.Address = A;
    return Op;
  };
  auto Acq = [] {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::Acquire;
    return Op;
  };
  auto Rel = [] {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::Release;
    return Op;
  };
  auto Add = [](RegionId Id, Addr Start, Addr End) {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::AddRegion;
    Op.Region = Id;
    Op.Address = Start;
    Op.End = End;
    return Op;
  };
  auto Rm = [](RegionId Id) {
    VerifyOp Op;
    Op.K = VerifyOp::Kind::RemoveRegion;
    Op.Region = Id;
    return Op;
  };

  std::vector<VerifyProgram> Programs;
  Programs.push_back({"rw_mix",
                      {{St(X), Ld(Y), St(Y), Ld(X, true)},
                       {St(Y), Ld(X), St(X), Ld(Y, true)}}});
  Programs.push_back({"sync_mix",
                      {{St(X), Rel(), Acq(), Ld(Y, true)},
                       {St(Y), Rel(), Acq(), Ld(X, true)}}});
  Programs.push_back({"region_mix",
                      {{Add(1, X, X + 0x40), St(X), St(X), Rm(1), Rel()},
                       {Ld(X, true), Acq(), Ld(X, true)}}});
  Programs.push_back({"three_way",
                      {{St(X), Rel()},
                       {Ld(X), Acq(), Ld(X, true)},
                       {St(Y), Rel(), Ld(X, true)}}});
  return Programs;
}

void emitStringArray(JsonWriter &W, std::string_view Key,
                     const std::vector<std::string> &Values) {
  W.key(Key).beginArray();
  for (const std::string &V : Values)
    W.value(V);
  W.endArray();
}

void emitStats(JsonWriter &W, const ExplorerStats &Stats) {
  W.key("stats").beginObject();
  W.member("states_visited", Stats.StatesVisited);
  W.member("states_deduped", Stats.StatesDeduped);
  W.member("schedules_completed", Stats.SchedulesCompleted);
  W.member("truncated", Stats.Truncated);
  W.endObject();
}

void emitCounterexample(JsonWriter &W, const Counterexample &Ce) {
  W.key("counterexample").beginObject();
  W.member("steps", std::uint64_t(Ce.Steps.size()));
  W.member("violations", Ce.Violations);
  W.key("trace").beginArray();
  for (const TraceStep &Step : Ce.Steps)
    W.beginObject()
        .member("thread", Step.Thread)
        .member("pc", Step.Pc)
        .member("op", verifyOpName(Step.Op.K))
        .member("address", Step.Op.Address)
        .endObject();
  W.endArray();
  emitStringArray(W, "messages", Ce.Messages);
  W.endObject();
}

} // namespace

int main(int Argc, char **Argv) {
  VerifyOptions Opts;
  std::string ProtocolList;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Eq = Arg.find('=');
    std::string Key = Arg.substr(0, Eq);
    std::string Value = Eq == std::string::npos ? "" : Arg.substr(Eq + 1);
    if (Key == "--help" || Key == "-h") {
      usage(stdout);
      return 0;
    }
    if (Key == "--list") {
      Opts.List = true;
    } else if (Key == "--protocol") {
      ProtocolList = Value;
    } else if (Key == "--mode") {
      if (Value != "all" && Value != "litmus" && Value != "explore") {
        std::fprintf(stderr, "warden-verify: unknown mode '%s'\n",
                     Value.c_str());
        return 2;
      }
      Opts.Mode = Value;
    } else if (Key == "--jobs") {
      std::uint64_t N = 0;
      if (!parseUnsigned(Value, N) || N == 0 || N > 256) {
        std::fprintf(stderr, "warden-verify: bad --jobs value '%s'\n",
                     Value.c_str());
        return 2;
      }
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (Key == "--max-states") {
      if (!parseUnsigned(Value, Opts.MaxStates) || Opts.MaxStates == 0) {
        std::fprintf(stderr, "warden-verify: bad --max-states value '%s'\n",
                     Value.c_str());
        return 2;
      }
    } else if (Key == "--mutate") {
      std::optional<ProtocolMutation> M = parseMutation(Value);
      if (!M) {
        std::fprintf(stderr, "warden-verify: unknown mutation '%s' (known: %s)\n",
                     Value.c_str(), knownMutations().c_str());
        return 2;
      }
      Opts.Mutation = *M;
    } else if (Key == "--json") {
      Opts.JsonPath = Value;
    } else if (Key == "--evlog") {
      if (Value.empty()) {
        std::fprintf(stderr, "warden-verify: --evlog wants a base path\n");
        return 2;
      }
      Opts.EvlogBase = Value;
    } else {
      std::fprintf(stderr, "warden-verify: unknown option '%s'\n",
                   Arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (Opts.List) {
    std::printf("protocols:\n");
    for (const std::string &Id : registeredProtocolIds())
      std::printf("  %-10s %s\n", Id.c_str(),
                  consistencyModelName(declaredModel(*parseProtocolId(Id))));
    std::printf("replacement policies:\n");
    for (const std::string &Id : registeredReplacementIds())
      std::printf("  %s\n", Id.c_str());
    std::printf("litmus patterns:\n");
    for (const LitmusPattern &P : litmusSuite())
      std::printf("  %-12s %s\n", P.Program.Name.c_str(), P.Note.c_str());
    std::printf("mutations:\n");
    std::size_t MutationCount = 0;
    const ProtocolMutation *Mutations = allProtocolMutations(MutationCount);
    for (std::size_t I = 0; I < MutationCount; ++I)
      std::printf("  %s\n", mutationName(Mutations[I]));
    return 0;
  }

  if (ProtocolList.empty()) {
    for (const std::string &Id : registeredProtocolIds())
      Opts.Protocols.push_back(*parseProtocolId(Id));
  } else {
    std::string Error;
    std::optional<std::vector<ProtocolKind>> Kinds =
        parseProtocolList(ProtocolList, Error);
    if (!Kinds) {
      std::fprintf(stderr, "warden-verify: --protocol: %s\n", Error.c_str());
      return 2;
    }
    Opts.Protocols = std::move(*Kinds);
  }

  JobPool Pool(Opts.Jobs);
  JobPool *PoolPtr = Opts.Jobs > 1 ? &Pool : nullptr;
  bool MutationRun = Opts.Mutation != ProtocolMutation::None;

  JsonWriter W;
  W.beginObject();
  W.member("tool", "warden-verify");
  W.member("mode", Opts.Mode);
  W.member("mutation", mutationName(Opts.Mutation));
  W.key("protocols").beginArray();

  bool AllPassed = true;
  // With a mutation injected the harness passes only if at least one
  // search catches the bug.
  bool MutationCaught = false;

  for (ProtocolKind Protocol : Opts.Protocols) {
    ConsistencyModel Model = declaredModel(Protocol);
    W.beginObject();
    W.member("protocol", protocolId(Protocol));
    W.member("model", consistencyModelName(Model));

    if (Opts.Mode == "all" || Opts.Mode == "litmus") {
      W.key("litmus").beginArray();
      for (const LitmusPattern &Pattern : litmusSuite()) {
        LitmusResult R = [&] {
          if (!MutationRun)
            return runLitmus(Pattern, Protocol, PoolPtr);
          // Mutated run: bypass the contract judgement, just explore.
          LitmusResult M;
          M.Pattern = Pattern.Program.Name;
          M.Protocol = Protocol;
          M.Model = Model;
          ExplorerOptions EO;
          EO.Protocol = Protocol;
          EO.Faults.Mutation = Opts.Mutation;
          EO.MaxStatesPerRoot = Opts.MaxStates;
          EO.Pool = PoolPtr;
          M.Exploration = Explorer(EO).explore(Pattern.Program);
          M.Passed = M.Exploration.clean();
          return M;
        }();

        W.beginObject();
        W.member("pattern", R.Pattern);
        W.member("passed", R.Passed);
        emitStringArray(W, "outcomes", R.Exploration.Outcomes);
        emitStringArray(W, "sc_outcomes", R.Exploration.ScOutcomes);
        emitStringArray(W, "weak_outcomes", R.Exploration.weakOutcomes());
        emitStringArray(W, "failures", R.Failures);
        emitStats(W, R.Exploration.Stats);
        if (R.Exploration.Violation) {
          emitCounterexample(W, *R.Exploration.Violation);
          MutationCaught = true;
          std::printf("[%s/%s] counterexample:\n%s\n",
                      protocolId(Protocol), R.Pattern.c_str(),
                      R.Exploration.Violation->describe().c_str());
        }
        W.endObject();

        if (MutationRun)
          continue; // Judged globally below.
        if (!R.Passed) {
          AllPassed = false;
          std::printf("[%s/%s] FAILED\n", protocolId(Protocol),
                      R.Pattern.c_str());
          for (const std::string &Why : R.Failures)
            std::printf("  %s\n", Why.c_str());
        }
      }
      W.endArray();
    }

    if (Opts.Mode == "all" || Opts.Mode == "explore") {
      W.key("explore").beginArray();
      for (const VerifyProgram &Program : explorePrograms()) {
        ExplorerOptions EO;
        EO.Protocol = Protocol;
        EO.Faults.Mutation = Opts.Mutation;
        EO.MaxStatesPerRoot = Opts.MaxStates;
        EO.Pool = PoolPtr;
        ExplorerResult R = Explorer(EO).explore(Program);

        bool Clean = R.clean() && !R.Stats.Truncated;
        // SC-for-DRF backends additionally owe SC outcomes everywhere.
        if (Model == ConsistencyModel::ScForDrf && !R.weakOutcomes().empty())
          Clean = false;

        W.beginObject();
        W.member("program", Program.Name);
        W.member("clean", Clean);
        emitStringArray(W, "outcomes", R.Outcomes);
        emitStringArray(W, "weak_outcomes", R.weakOutcomes());
        emitStats(W, R.Stats);
        if (R.Violation) {
          emitCounterexample(W, *R.Violation);
          MutationCaught = true;
          std::printf("[%s/%s] counterexample:\n%s\n",
                      protocolId(Protocol), Program.Name.c_str(),
                      R.Violation->describe().c_str());
        }
        W.endObject();

        if (MutationRun)
          continue;
        if (!Clean) {
          AllPassed = false;
          std::printf("[%s/%s] FAILED (violation or weak outcome)\n",
                      protocolId(Protocol), Program.Name.c_str());
        }
      }
      W.endArray();
    }

    W.endObject();
  }
  W.endArray();

  bool Passed = MutationRun ? MutationCaught : AllPassed;
  W.member("passed", Passed);
  W.endObject();

  if (!Opts.EvlogBase.empty()) {
    // Event-log smoke capture: one small deterministic recorded workload
    // (the dedup fixture — the paper's false-sharing example) simulated
    // under every protocol under test, each streaming its event log to
    // <base>.<protocol>.evlog. This is the canonical source of aligned
    // logs for `warden-stat diff`.
    pbbs::Recorded Fixture = pbbs::recordDedup(256, RtOptions());
    EventLog Log;
    Log.configure(Opts.EvlogBase);
    Log.setRunLabel("dedup-smoke");
    Observability Obs;
    Obs.Log = &Log;
    for (ProtocolKind Protocol : Opts.Protocols) {
      MachineConfig Config = MachineConfig::singleSocket();
      Config.Protocol = Protocol;
      RunOptions Run;
      Run.Repeats = 1;
      Run.Obs = &Obs;
      WardenSystem::simulateMedian(Fixture.Graph, Config, Run);
      if (!Log.error().empty()) {
        std::fprintf(stderr, "warden-verify: evlog capture failed: %s\n",
                     Log.error().c_str());
        return 1;
      }
      std::printf("evlog: %s (%llu records)\n", Log.lastPath().c_str(),
                  static_cast<unsigned long long>(Log.recordsEmitted()));
    }
  }

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "warden-verify: cannot write '%s'\n",
                   Opts.JsonPath.c_str());
      return 2;
    }
    Out << W.str() << "\n";
  }

  if (MutationRun)
    std::printf("mutation '%s': %s\n", mutationName(Opts.Mutation),
                MutationCaught ? "caught (counterexample above)"
                               : "NOT CAUGHT — verification gap");
  else
    std::printf("warden-verify: %s\n", Passed ? "all checks passed"
                                              : "FAILURES (see above)");
  return Passed ? 0 : 1;
}
