//===- tools/warden_stat.cpp - Offline event-log query CLI ----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// warden-stat: offline queries over warden-evlog-v1 event logs.
///
///   warden-stat summary FILE.evlog               # whole-run rollup
///   warden-stat top FILE.evlog [--n=20] [--kind=invalidation]
///   warden-stat rates FILE.evlog [--window=CYCLES]
///   warden-stat diff A.evlog B.evlog [--n=20] [--json=PATH]
///   warden-stat perfetto FILE.evlog OUT.json [--window=CYCLES]
///
/// `diff` aligns two logs of the same workload (e.g. MESI vs WARDen) and
/// attributes invalidation/downgrade/miss deltas to lines, allocation
/// sites, and WARD regions — positive deltas mean the second protocol
/// avoided that work. `perfetto` renders windowed event-rate counter
/// tracks loadable in ui.perfetto.dev / chrome://tracing, composing with
/// the task-span traces the bench harnesses emit.
///
/// Exit codes: 0 success, 1 query error (damaged file), 2 usage.
///
//===----------------------------------------------------------------------===//

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/EvlogStat.h"
#include "src/support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace warden;

namespace {

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: warden-stat <command> [args]\n"
      "  summary FILE.evlog                whole-run per-kind/per-core rollup\n"
      "  top FILE.evlog [--n=N] [--kind=K] most contended lines (default: by\n"
      "                                    invalidations+downgrades; --kind\n"
      "                                    ranks by one event kind)\n"
      "  rates FILE.evlog [--window=C]     event counts per C-cycle window\n"
      "  diff A.evlog B.evlog [--n=N] [--json=PATH]\n"
      "                                    align two protocols' logs; attribute\n"
      "                                    coherence deltas to lines, sites,\n"
      "                                    and regions\n"
      "  perfetto FILE.evlog OUT.json [--window=C]\n"
      "                                    windowed event-rate counter tracks\n");
}

bool parseUnsigned(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty())
    return false;
  Out = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<std::uint64_t>(C - '0');
  }
  return true;
}

struct StatArgs {
  std::vector<std::string> Files;
  std::uint64_t N = 20;
  std::uint64_t Window = 0;
  std::string Kind;
  std::string JsonPath;
};

bool parseArgs(int Argc, char **Argv, int From, StatArgs &Out) {
  for (int I = From; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--n=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(4), Out.N) || Out.N == 0) {
        std::fprintf(stderr, "warden-stat: bad --n value '%s'\n", Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--window=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(9), Out.Window)) {
        std::fprintf(stderr, "warden-stat: bad --window value '%s'\n",
                     Arg.c_str());
        return false;
      }
    } else if (Arg.rfind("--kind=", 0) == 0) {
      Out.Kind = Arg.substr(7);
    } else if (Arg.rfind("--json=", 0) == 0) {
      Out.JsonPath = Arg.substr(7);
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "warden-stat: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Out.Files.push_back(Arg);
    }
  }
  return true;
}

void printSummary(const EvlogSummary &S) {
  std::printf("protocol:      %s\n", S.Header.ProtocolId.c_str());
  if (!S.Header.Label.empty())
    std::printf("label:         %s\n", S.Header.Label.c_str());
  std::printf("cores:         %u\n", S.Header.CoreCount);
  std::printf("block size:    %u\n", S.Header.BlockSize);
  std::printf("records:       %llu\n",
              static_cast<unsigned long long>(S.Records));
  std::printf("cycle span:    [%llu, %llu]\n",
              static_cast<unsigned long long>(S.FirstCycle),
              static_cast<unsigned long long>(S.LastCycle));
  std::printf("miss cycles:   %llu\n",
              static_cast<unsigned long long>(S.MissCycles));
  std::printf("sync cycles:   %llu\n",
              static_cast<unsigned long long>(S.SyncCycles));
  std::printf("by kind:\n");
  for (unsigned K = 1; K < NumEvKinds; ++K)
    if (S.ByKind[K] != 0)
      std::printf("  %-24s %llu\n", evKindName(static_cast<EvKind>(K)),
                  static_cast<unsigned long long>(S.ByKind[K]));
  std::printf("by core:\n");
  for (const auto &[Core, Count] : S.ByCore) {
    if (Core == EventLog::DirectorySource)
      std::printf("  %-24s %llu\n", "directory",
                  static_cast<unsigned long long>(Count));
    else
      std::printf("  core %-19u %llu\n", Core,
                  static_cast<unsigned long long>(Count));
  }
}

int cmdSummary(const StatArgs &Args) {
  EvlogSummary S;
  std::string Error;
  if (!evlogSummarize(Args.Files[0], S, Error)) {
    std::fprintf(stderr, "warden-stat: %s\n", Error.c_str());
    return 1;
  }
  printSummary(S);
  return 0;
}

int cmdTop(const StatArgs &Args) {
  std::vector<LineStat> Lines;
  std::string Error;
  if (!evlogTopLines(Args.Files[0], Args.N, Args.Kind, Lines, Error)) {
    std::fprintf(stderr, "warden-stat: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%-14s %10s %10s %10s %10s  %s\n", "line", "inv", "down", "miss",
              "misscyc", "site");
  for (const LineStat &L : Lines)
    std::printf("0x%-12llx %10llu %10llu %10llu %10llu  %s\n",
                static_cast<unsigned long long>(L.Block),
                static_cast<unsigned long long>(L.Invalidations),
                static_cast<unsigned long long>(L.Downgrades),
                static_cast<unsigned long long>(L.Misses),
                static_cast<unsigned long long>(L.MissCycles),
                L.SiteName.c_str());
  return 0;
}

int cmdRates(const StatArgs &Args) {
  std::vector<WindowStat> Windows;
  std::string Error;
  if (!evlogWindowRates(Args.Files[0], Args.Window, Windows, Error)) {
    std::fprintf(stderr, "warden-stat: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%-14s %10s %10s %10s %10s\n", "window_start", "total", "miss",
              "inv", "down");
  for (const WindowStat &W : Windows)
    std::printf("%-14llu %10llu %10llu %10llu %10llu\n",
                static_cast<unsigned long long>(W.Start),
                static_cast<unsigned long long>(W.total()),
                static_cast<unsigned long long>(
                    W.ByKind[static_cast<unsigned>(EvKind::DemandMiss)]),
                static_cast<unsigned long long>(
                    W.ByKind[static_cast<unsigned>(EvKind::Invalidation)] +
                    W.ByKind[static_cast<unsigned>(EvKind::LogInvalidation)]),
                static_cast<unsigned long long>(
                    W.ByKind[static_cast<unsigned>(EvKind::Downgrade)]));
  return 0;
}

void emitDiffEntries(JsonWriter &W, std::string_view Key,
                     const std::vector<DiffEntry> &Entries, std::size_t N) {
  W.key(Key).beginArray();
  for (std::size_t I = 0; I < Entries.size() && I < N; ++I) {
    const DiffEntry &E = Entries[I];
    W.beginObject()
        .member("name", E.Name)
        .member("inv_a", E.InvA)
        .member("inv_b", E.InvB)
        .member("down_a", E.DownA)
        .member("down_b", E.DownB)
        .member("miss_a", E.MissA)
        .member("miss_b", E.MissB)
        .member("miss_cycles_a", E.MissCyclesA)
        .member("miss_cycles_b", E.MissCyclesB)
        .member("contention_delta", E.contentionDelta())
        .endObject();
  }
  W.endArray();
}

void printDiffSection(const char *Title, const std::vector<DiffEntry> &Entries,
                      std::size_t N) {
  std::printf("%s (A-B contention delta, positive = B avoided it):\n", Title);
  std::printf("  %10s %10s %10s %10s %10s  %s\n", "delta", "invA", "invB",
              "downA", "downB", "name");
  for (std::size_t I = 0; I < Entries.size() && I < N; ++I) {
    const DiffEntry &E = Entries[I];
    std::printf("  %+10lld %10llu %10llu %10llu %10llu  %s\n",
                static_cast<long long>(E.contentionDelta()),
                static_cast<unsigned long long>(E.InvA),
                static_cast<unsigned long long>(E.InvB),
                static_cast<unsigned long long>(E.DownA),
                static_cast<unsigned long long>(E.DownB), E.Name.c_str());
  }
}

int cmdDiff(const StatArgs &Args) {
  EvlogDiff D;
  std::string Error;
  if (!evlogDiff(Args.Files[0], Args.Files[1], D, Error)) {
    std::fprintf(stderr, "warden-stat: %s\n", Error.c_str());
    return 1;
  }
  std::printf("A: %s (%s, %llu records)\n", Args.Files[0].c_str(),
              D.A.Header.ProtocolId.c_str(),
              static_cast<unsigned long long>(D.A.Records));
  std::printf("B: %s (%s, %llu records)\n", Args.Files[1].c_str(),
              D.B.Header.ProtocolId.c_str(),
              static_cast<unsigned long long>(D.B.Records));
  std::printf("totals: inv %llu -> %llu, down %llu -> %llu, "
              "miss %llu -> %llu, miss cycles %llu -> %llu\n",
              static_cast<unsigned long long>(D.A.invalidations()),
              static_cast<unsigned long long>(D.B.invalidations()),
              static_cast<unsigned long long>(D.A.downgrades()),
              static_cast<unsigned long long>(D.B.downgrades()),
              static_cast<unsigned long long>(D.A.misses()),
              static_cast<unsigned long long>(D.B.misses()),
              static_cast<unsigned long long>(D.A.MissCycles),
              static_cast<unsigned long long>(D.B.MissCycles));
  printDiffSection("lines", D.Lines, Args.N);
  printDiffSection("sites", D.Sites, Args.N);
  printDiffSection("regions", D.Regions, Args.N);

  if (!Args.JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.member("schema", "warden-stat-diff-v1");
    W.member("a", Args.Files[0]);
    W.member("b", Args.Files[1]);
    W.member("protocol_a", D.A.Header.ProtocolId);
    W.member("protocol_b", D.B.Header.ProtocolId);
    W.member("inv_a", D.A.invalidations());
    W.member("inv_b", D.B.invalidations());
    W.member("down_a", D.A.downgrades());
    W.member("down_b", D.B.downgrades());
    W.member("miss_a", D.A.misses());
    W.member("miss_b", D.B.misses());
    W.member("miss_cycles_a", D.A.MissCycles);
    W.member("miss_cycles_b", D.B.MissCycles);
    emitDiffEntries(W, "lines", D.Lines, Args.N);
    emitDiffEntries(W, "sites", D.Sites, Args.N);
    emitDiffEntries(W, "regions", D.Regions, Args.N);
    W.endObject();
    std::ofstream Out(Args.JsonPath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "warden-stat: cannot write '%s'\n",
                   Args.JsonPath.c_str());
      return 1;
    }
    Out << W.str() << "\n";
  }
  return 0;
}

int cmdPerfetto(const StatArgs &Args) {
  ChromeTraceExporter Trace;
  std::string Error;
  if (!evlogExportPerfetto(Args.Files[0], Args.Window, Trace, Error)) {
    std::fprintf(stderr, "warden-stat: %s\n", Error.c_str());
    return 1;
  }
  if (!Trace.writeFile(Args.Files[1])) {
    std::fprintf(stderr, "warden-stat: cannot write '%s'\n",
                 Args.Files[1].c_str());
    return 1;
  }
  std::printf("wrote %zu counter samples to %s\n", Trace.counterCount(),
              Args.Files[1].c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage(stderr);
    return 2;
  }
  std::string Command = Argv[1];
  if (Command == "--help" || Command == "-h") {
    usage(stdout);
    return 0;
  }
  StatArgs Args;
  if (!parseArgs(Argc, Argv, 2, Args))
    return 2;

  std::size_t Need = Command == "diff" || Command == "perfetto" ? 2 : 1;
  if (Args.Files.size() != Need) {
    std::fprintf(stderr, "warden-stat: %s takes %zu file argument%s\n",
                 Command.c_str(), Need, Need == 1 ? "" : "s");
    usage(stderr);
    return 2;
  }

  if (Command == "summary")
    return cmdSummary(Args);
  if (Command == "top")
    return cmdTop(Args);
  if (Command == "rates")
    return cmdRates(Args);
  if (Command == "diff")
    return cmdDiff(Args);
  if (Command == "perfetto")
    return cmdPerfetto(Args);

  std::fprintf(stderr, "warden-stat: unknown command '%s'\n", Command.c_str());
  usage(stderr);
  return 2;
}
